//! The 2D atom array.

use crate::interaction::{BfsScratch, InteractionGraph};
use crate::{Direction, Site};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular 2D array of optical traps, some of which may have lost
/// their atom (*holes*).
///
/// `Grid` answers the geometric questions the compiler and the loss
/// strategies ask: which atoms exist, which pairs are within the maximum
/// interaction distance (MID), hop-distance paths over usable atoms, and
/// connectivity of the interaction graph.
///
/// # Example
///
/// ```
/// use na_arch::{Grid, Site};
///
/// let mut grid = Grid::new(10, 10);
/// assert_eq!(grid.num_usable(), 100);
/// assert!(grid.in_range(Site::new(0, 0), Site::new(2, 0), 2.0));
///
/// grid.remove_atom(Site::new(5, 5));
/// assert_eq!(grid.num_usable(), 99);
/// assert!(!grid.is_usable(Site::new(5, 5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    width: u32,
    height: u32,
    usable: Vec<bool>,
}

impl Grid {
    /// A stable 64-bit fingerprint of the device: dimensions plus the
    /// exact hole pattern (FNV-1a). Grids with identical dimensions
    /// and holes always agree; the experiment engine keys its memoized
    /// compilation cache on this.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |b: u64| {
            hash ^= b;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(u64::from(self.width));
        fold(u64::from(self.height));
        for chunk in self.usable.chunks(64) {
            let mut word = 0u64;
            for (i, &u) in chunk.iter().enumerate() {
                if u {
                    word |= 1 << i;
                }
            }
            fold(word);
        }
        hash
    }

    /// Creates a fully loaded `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid {
            width,
            height,
            usable: vec![true; (width * height) as usize],
        }
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of trap sites (including holes).
    #[inline]
    pub fn num_sites(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Number of sites currently holding an atom.
    pub fn num_usable(&self) -> usize {
        self.usable.iter().filter(|&&u| u).count()
    }

    /// Number of holes (lost atoms).
    pub fn num_holes(&self) -> usize {
        self.num_sites() - self.num_usable()
    }

    /// `true` if `site` lies within the grid bounds.
    #[inline]
    pub fn contains(&self, site: Site) -> bool {
        site.x >= 0 && site.y >= 0 && (site.x as u32) < self.width && (site.y as u32) < self.height
    }

    fn idx(&self, site: Site) -> usize {
        debug_assert!(self.contains(site));
        site.y as usize * self.width as usize + site.x as usize
    }

    /// The site for a flat index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_sites()`.
    pub fn site_at(&self, index: usize) -> Site {
        assert!(index < self.num_sites(), "site index out of range");
        Site::new(
            (index % self.width as usize) as i32,
            (index / self.width as usize) as i32,
        )
    }

    /// `true` if `site` is in bounds and holds an atom.
    #[inline]
    pub fn is_usable(&self, site: Site) -> bool {
        self.contains(site) && self.usable[self.idx(site)]
    }

    /// The usability vector in row-major flat-index order —
    /// `usable_mask()[i]` ⇔ the site with flat index `i` holds an
    /// atom. This *is* the grid's internal state (not a copy), so it
    /// can be handed directly to hole-masked queries like
    /// `InteractionGraph::hop_distance_masked` without any mirror
    /// bookkeeping.
    #[inline]
    pub fn usable_mask(&self) -> &[bool] {
        &self.usable
    }

    /// The row-major flat index of `site` (the `usable_mask`
    /// position, inverse of [`Grid::site_at`]).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `site` is out of bounds.
    #[inline]
    pub fn flat_index(&self, site: Site) -> usize {
        self.idx(site)
    }

    /// Marks the atom at `site` as lost. Returns `true` if an atom was
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of bounds.
    pub fn remove_atom(&mut self, site: Site) -> bool {
        assert!(self.contains(site), "site {site} out of bounds");
        let i = self.idx(site);
        std::mem::replace(&mut self.usable[i], false)
    }

    /// Restores the atom at `site` (used when modelling array reloads).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of bounds.
    pub fn restore_atom(&mut self, site: Site) {
        assert!(self.contains(site), "site {site} out of bounds");
        let i = self.idx(site);
        self.usable[i] = true;
    }

    /// Reloads the entire array: every site holds an atom again.
    pub fn restore_all(&mut self) {
        self.usable.fill(true);
    }

    /// The holes, in row-major order.
    pub fn holes(&self) -> Vec<Site> {
        (0..self.num_sites())
            .filter(|&i| !self.usable[i])
            .map(|i| self.site_at(i))
            .collect()
    }

    /// Iterates over every trap site in row-major order.
    pub fn sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.num_sites()).map(|i| self.site_at(i))
    }

    /// Iterates over sites currently holding an atom, row-major.
    pub fn usable_sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.num_sites())
            .filter(|&i| self.usable[i])
            .map(|i| self.site_at(i))
    }

    /// The site closest to the geometric center of the device.
    pub fn center(&self) -> Site {
        Site::new((self.width as i32 - 1) / 2, (self.height as i32 - 1) / 2)
    }

    /// The largest possible interaction distance on this device
    /// (corner to corner); at this MID the topology is all-to-all.
    pub fn max_distance(&self) -> f64 {
        Site::new(0, 0).distance(Site::new(self.width as i32 - 1, self.height as i32 - 1))
    }

    /// `true` if `a` and `b` both hold atoms and are within `mid`.
    pub fn in_range(&self, a: Site, b: Site, mid: f64) -> bool {
        self.is_usable(a) && self.is_usable(b) && a.within(b, mid)
    }

    /// All usable sites within Euclidean distance `mid` of `site`,
    /// excluding `site` itself, in ascending `Site` order.
    pub fn neighbors_within(&self, site: Site, mid: f64) -> Vec<Site> {
        let r = mid.floor() as i32;
        let mut out = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let s = Site::new(site.x + dx, site.y + dy);
                if self.is_usable(s) && site.within(s, mid) {
                    out.push(s);
                }
            }
        }
        out.sort();
        out
    }

    /// Hop distances (in MID-range hops over usable atoms) from `from`
    /// to every site; `None` for unreachable or unusable sites.
    ///
    /// Returns an empty map-equivalent (all `None`) if `from` itself is
    /// unusable. Runs over the memoized [`InteractionGraph`] so the BFS
    /// allocates nothing per hop.
    pub fn hop_distances(&self, from: Site, mid: f64) -> Vec<Option<u32>> {
        let graph = InteractionGraph::cached(self, mid);
        let mut out = Vec::new();
        graph.hop_distances_into(from, &mut BfsScratch::new(), &mut out);
        out
    }

    /// Hop distance between two usable sites, if connected.
    pub fn hop_distance(&self, a: Site, b: Site, mid: f64) -> Option<u32> {
        if !self.contains(b) {
            return None;
        }
        InteractionGraph::cached(self, mid).hop_distance(a, b, &mut BfsScratch::new())
    }

    /// Shortest path (inclusive of both endpoints) between usable sites
    /// where each hop is within `mid`, or `None` if disconnected.
    pub fn shortest_path(&self, a: Site, b: Site, mid: f64) -> Option<Vec<Site>> {
        if !self.is_usable(a) || !self.is_usable(b) {
            return None;
        }
        if a == b {
            return Some(vec![a]);
        }
        let graph = InteractionGraph::cached(self, mid);
        let (ai, bi) = (self.idx(a), self.idx(b));
        let mut prev: Vec<u32> = vec![u32::MAX; self.num_sites()];
        let mut seen = vec![false; self.num_sites()];
        let mut queue = std::collections::VecDeque::new();
        seen[ai] = true;
        queue.push_back(ai as u32);
        while let Some(s) = queue.pop_front() {
            for &n in graph.neighbors(s as usize) {
                let i = n as usize;
                if seen[i] {
                    continue;
                }
                seen[i] = true;
                prev[i] = s;
                if i == bi {
                    let mut path = vec![b];
                    let mut cur = s as usize;
                    loop {
                        path.push(self.site_at(cur));
                        match prev[cur] {
                            u32::MAX => break,
                            p => cur = p as usize,
                        }
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(n);
            }
        }
        None
    }

    /// Size of the largest connected component of the usable interaction
    /// graph at the given MID.
    pub fn largest_component(&self, mid: f64) -> usize {
        InteractionGraph::cached(self, mid).largest_component(&mut BfsScratch::new())
    }

    /// `true` if every usable atom can reach every other via MID hops.
    pub fn is_connected(&self, mid: f64) -> bool {
        let usable = self.num_usable();
        usable == 0 || self.largest_component(mid) == usable
    }

    /// Number of usable sites strictly beyond `from` in direction `dir`,
    /// up to the device edge (the "room to shift" of the virtual-remap
    /// strategy).
    pub fn usable_toward_edge(&self, from: Site, dir: Direction) -> usize {
        let mut count = 0;
        let mut cur = from.step(dir);
        while self.contains(cur) {
            if self.is_usable(cur) {
                count += 1;
            }
            cur = cur.step(dir);
        }
        count
    }
}

impl fmt::Display for Grid {
    /// Renders the grid with `.` for atoms and `x` for holes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in 0..self.height as i32 {
            for x in 0..self.width as i32 {
                let c = if self.is_usable(Site::new(x, y)) {
                    '.'
                } else {
                    'x'
                };
                write!(f, "{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fresh_grid_is_fully_usable() {
        let g = Grid::new(4, 3);
        assert_eq!(g.num_sites(), 12);
        assert_eq!(g.num_usable(), 12);
        assert_eq!(g.num_holes(), 0);
        assert!(g.holes().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        Grid::new(0, 5);
    }

    #[test]
    fn remove_and_restore_atoms() {
        let mut g = Grid::new(3, 3);
        assert!(g.remove_atom(Site::new(1, 1)));
        assert!(!g.remove_atom(Site::new(1, 1)), "already a hole");
        assert_eq!(g.holes(), vec![Site::new(1, 1)]);
        g.restore_atom(Site::new(1, 1));
        assert_eq!(g.num_holes(), 0);
        g.remove_atom(Site::new(0, 0));
        g.restore_all();
        assert_eq!(g.num_usable(), 9);
    }

    #[test]
    fn site_index_round_trip() {
        let g = Grid::new(5, 4);
        for (i, s) in g.sites().enumerate() {
            assert_eq!(g.site_at(i), s);
        }
    }

    #[test]
    fn neighbors_within_mid_one_are_cardinal() {
        let g = Grid::new(5, 5);
        let n = g.neighbors_within(Site::new(2, 2), 1.0);
        assert_eq!(
            n,
            vec![
                Site::new(1, 2),
                Site::new(2, 1),
                Site::new(2, 3),
                Site::new(3, 2),
            ]
        );
    }

    #[test]
    fn neighbors_within_mid_two_include_diagonals() {
        let g = Grid::new(5, 5);
        let n = g.neighbors_within(Site::new(2, 2), 2.0);
        // 4 cardinal at distance 1, 4 diagonal at sqrt(2), 4 cardinal at 2.
        assert_eq!(n.len(), 12);
        assert!(n.contains(&Site::new(1, 1)));
        assert!(n.contains(&Site::new(0, 2)));
        assert!(!n.contains(&Site::new(0, 0))); // distance 2*sqrt(2) > 2
    }

    #[test]
    fn neighbors_skip_holes() {
        let mut g = Grid::new(3, 3);
        g.remove_atom(Site::new(1, 0));
        let n = g.neighbors_within(Site::new(1, 1), 1.0);
        assert!(!n.contains(&Site::new(1, 0)));
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn corner_has_fewer_neighbors() {
        let g = Grid::new(5, 5);
        assert_eq!(g.neighbors_within(Site::new(0, 0), 1.0).len(), 2);
    }

    #[test]
    fn hop_distance_mid_one_is_manhattan() {
        let g = Grid::new(6, 6);
        assert_eq!(
            g.hop_distance(Site::new(0, 0), Site::new(3, 2), 1.0),
            Some(5)
        );
    }

    #[test]
    fn hop_distance_grows_shorter_with_larger_mid() {
        let g = Grid::new(10, 10);
        let a = Site::new(0, 0);
        let b = Site::new(9, 9);
        let d1 = g.hop_distance(a, b, 1.0).unwrap();
        let d3 = g.hop_distance(a, b, 3.0).unwrap();
        assert!(d3 < d1);
        assert_eq!(g.hop_distance(a, b, g.max_distance()), Some(1));
    }

    #[test]
    fn shortest_path_endpoints_and_hops() {
        let g = Grid::new(5, 5);
        let p = g
            .shortest_path(Site::new(0, 0), Site::new(4, 0), 2.0)
            .unwrap();
        assert_eq!(p.first(), Some(&Site::new(0, 0)));
        assert_eq!(p.last(), Some(&Site::new(4, 0)));
        for w in p.windows(2) {
            assert!(w[0].within(w[1], 2.0));
        }
        assert_eq!(p.len(), 3); // 0 -> 2 -> 4
    }

    #[test]
    fn shortest_path_routes_around_holes() {
        let mut g = Grid::new(3, 3);
        // Wall of holes across the middle column except the top.
        g.remove_atom(Site::new(1, 1));
        g.remove_atom(Site::new(1, 2));
        let p = g
            .shortest_path(Site::new(0, 2), Site::new(2, 2), 1.0)
            .unwrap();
        assert!(p.len() > 3, "must detour around the wall");
        for s in &p {
            assert!(g.is_usable(*s));
        }
    }

    #[test]
    fn disconnected_grid_has_no_path() {
        let mut g = Grid::new(3, 1);
        g.remove_atom(Site::new(1, 0));
        assert_eq!(g.shortest_path(Site::new(0, 0), Site::new(2, 0), 1.0), None);
        assert!(!g.is_connected(1.0));
        // A bigger MID jumps the hole.
        assert!(g.is_connected(2.0));
    }

    #[test]
    fn path_to_self_is_singleton() {
        let g = Grid::new(3, 3);
        let s = Site::new(1, 1);
        assert_eq!(g.shortest_path(s, s, 1.0), Some(vec![s]));
    }

    #[test]
    fn largest_component_counts_usable_atoms() {
        let mut g = Grid::new(4, 1);
        assert_eq!(g.largest_component(1.0), 4);
        g.remove_atom(Site::new(1, 0));
        assert_eq!(g.largest_component(1.0), 2); // {2,3} vs {0}
    }

    #[test]
    fn usable_toward_edge_counts_spares() {
        let mut g = Grid::new(5, 5);
        let s = Site::new(2, 2);
        assert_eq!(g.usable_toward_edge(s, Direction::East), 2);
        assert_eq!(g.usable_toward_edge(s, Direction::West), 2);
        g.remove_atom(Site::new(3, 2));
        assert_eq!(g.usable_toward_edge(s, Direction::East), 1);
        assert_eq!(g.usable_toward_edge(Site::new(4, 2), Direction::East), 0);
    }

    #[test]
    fn center_and_max_distance() {
        let g = Grid::new(10, 10);
        assert_eq!(g.center(), Site::new(4, 4));
        assert!((g.max_distance() - (81.0f64 + 81.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_shows_holes() {
        let mut g = Grid::new(2, 2);
        g.remove_atom(Site::new(1, 0));
        assert_eq!(g.to_string(), ".x\n..\n");
    }

    #[test]
    fn prop_hop_distance_symmetric() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Grid::new(6, 6);
        for _ in 0..64 {
            let a = Site::new(rng.gen_range(0i32..6), rng.gen_range(0i32..6));
            let b = Site::new(rng.gen_range(0i32..6), rng.gen_range(0i32..6));
            let m = f64::from(rng.gen_range(1u32..4));
            assert_eq!(g.hop_distance(a, b, m), g.hop_distance(b, a, m));
        }
    }

    #[test]
    fn prop_path_hops_match_hop_distance() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Grid::new(6, 6);
        for _ in 0..64 {
            let a = Site::new(0, 0);
            let b = Site::new(rng.gen_range(0i32..6), rng.gen_range(0i32..6));
            let m = f64::from(rng.gen_range(1u32..4));
            let path = g.shortest_path(a, b, m).unwrap();
            let hops = g.hop_distance(a, b, m).unwrap();
            assert_eq!(path.len() as u32, hops + 1);
        }
    }

    #[test]
    fn prop_neighbors_are_in_range_and_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Grid::new(8, 8);
        for _ in 0..64 {
            let s = Site::new(rng.gen_range(0i32..8), rng.gen_range(0i32..8));
            let m = f64::from(rng.gen_range(1u32..5));
            for n in g.neighbors_within(s, m) {
                assert!(g.is_usable(n));
                assert!(s.within(n, m));
                assert!(n != s);
            }
        }
    }
}
