//! Atom-array loading and rearrangement.
//!
//! The paper treats the ~0.3 s array reload as an opaque constant.
//! This module models where that constant comes from, following the
//! atom-by-atom assemblers of Barredo et al. (Science 2016) and
//! Endres et al. (Science 2016):
//!
//! 1. **Stochastic loading** — each optical trap captures an atom with
//!    probability ~0.5–0.6 from the MOT cloud;
//! 2. **Rearrangement** — a moving tweezer drags surplus atoms from
//!    reservoir traps into empty target traps, one move at a time;
//! 3. **Retry** — if the loaded atoms cannot fill the target region,
//!    the cloud is reloaded and assembly starts over.
//!
//! [`AssemblySimulator::assemble`] produces both a defect-free
//! [`Grid`](crate::Grid) and the time spent, so campaign simulations
//! can derive reload cost from physical parameters instead of assuming
//! 0.3 s.

use crate::{Grid, Site};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Physical parameters of the loading/rearrangement process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssemblyParams {
    /// Probability a trap captures an atom from the cloud (~0.55).
    pub load_probability: f64,
    /// Time to load the cloud and image the initial configuration
    /// (seconds); dominates the budget (~200 ms).
    pub cloud_load_time: f64,
    /// Time for one tweezer move, mostly independent of distance at
    /// these scales (~0.3 ms including handoff).
    pub move_time: f64,
    /// Probability a dragged atom survives one move (~0.99).
    pub move_success: f64,
    /// Final fluorescence verification time (~6 ms).
    pub verify_time: f64,
}

impl Default for AssemblyParams {
    fn default() -> Self {
        AssemblyParams {
            load_probability: 0.55,
            cloud_load_time: 0.2,
            move_time: 3e-4,
            move_success: 0.99,
            verify_time: 6e-3,
        }
    }
}

/// Outcome of one assembly run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblyReport {
    /// Cloud reload attempts (1 = first try succeeded).
    pub attempts: u32,
    /// Total tweezer moves executed across attempts.
    pub moves: u32,
    /// Atoms lost while being dragged.
    pub move_losses: u32,
    /// Total wall-clock time (seconds).
    pub duration: f64,
}

/// Simulates defect-free assembly of a `width × height` target array.
///
/// The physical device has a larger field of traps than the target
/// region; the simulator models a reservoir `margin` traps wide on
/// every side whose atoms refill target defects.
#[derive(Debug, Clone)]
pub struct AssemblySimulator {
    params: AssemblyParams,
    rng: StdRng,
}

impl AssemblySimulator {
    /// Creates a simulator with the given parameters and seed.
    pub fn new(params: AssemblyParams, seed: u64) -> Self {
        AssemblySimulator {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a simulator with default (Barredo-era) parameters.
    pub fn with_defaults(seed: u64) -> Self {
        AssemblySimulator::new(AssemblyParams::default(), seed)
    }

    /// Assembles a defect-free `width × height` array using a
    /// reservoir `margin` traps wide around the target region.
    ///
    /// Returns the assembled grid (always fully usable) and the
    /// report. The loop retries with a fresh cloud whenever the loaded
    /// atom count cannot cover the target, so it always terminates
    /// with success for `load_probability > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`, `height == 0`, or
    /// `load_probability == 0`.
    pub fn assemble(&mut self, width: u32, height: u32, margin: u32) -> (Grid, AssemblyReport) {
        assert!(
            width > 0 && height > 0,
            "target dimensions must be positive"
        );
        assert!(
            self.params.load_probability > 0.0,
            "loading can never succeed at probability 0"
        );
        let field_w = width + 2 * margin;
        let field_h = height + 2 * margin;
        let target_count = (width * height) as usize;

        let mut report = AssemblyReport {
            attempts: 0,
            moves: 0,
            move_losses: 0,
            duration: 0.0,
        };

        loop {
            report.attempts += 1;
            report.duration += self.params.cloud_load_time;

            // Stochastic loading over the whole field.
            let mut loaded: Vec<Site> = Vec::new();
            for y in 0..field_h as i32 {
                for x in 0..field_w as i32 {
                    if self.rng.gen_bool(self.params.load_probability) {
                        loaded.push(Site::new(x, y));
                    }
                }
            }

            // Target region in field coordinates.
            let in_target = |s: Site| {
                s.x >= margin as i32
                    && s.y >= margin as i32
                    && s.x < (margin + width) as i32
                    && s.y < (margin + height) as i32
            };
            let mut holes: Vec<Site> = (0..height as i32)
                .flat_map(|y| {
                    (0..width as i32).map(move |x| Site::new(x + margin as i32, y + margin as i32))
                })
                .filter(|&s| !loaded.contains(&s))
                .collect();
            let mut reservoir: Vec<Site> =
                loaded.iter().copied().filter(|&s| !in_target(s)).collect();

            if loaded.len() < target_count {
                continue; // not enough atoms anywhere: reload the cloud
            }

            // Greedy nearest-reservoir fills, retrying on drag loss.
            let mut failed = false;
            while let Some(hole) = holes.pop() {
                // Nearest reservoir atom (ties: site order).
                let Some(best_idx) = reservoir
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| (s.distance_sq(hole), **s))
                    .map(|(i, _)| i)
                else {
                    failed = true;
                    break;
                };
                let _src = reservoir.swap_remove(best_idx);
                report.moves += 1;
                report.duration += self.params.move_time;
                if !self.rng.gen_bool(self.params.move_success) {
                    // Atom lost in transit: the hole remains.
                    report.move_losses += 1;
                    holes.push(hole);
                }
            }
            if failed {
                continue;
            }

            report.duration += self.params.verify_time;
            return (Grid::new(width, height), report);
        }
    }

    /// Expected reload duration from `trials` independent assemblies —
    /// the physically derived substitute for the paper's 0.3 s
    /// constant.
    pub fn mean_reload_time(&mut self, width: u32, height: u32, margin: u32, trials: u32) -> f64 {
        let mut total = 0.0;
        for _ in 0..trials.max(1) {
            let (_, report) = self.assemble(width, height, margin);
            total += report.duration;
        }
        total / f64::from(trials.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_always_produces_defect_free_grid() {
        let mut sim = AssemblySimulator::with_defaults(1);
        let (grid, report) = sim.assemble(10, 10, 3);
        assert_eq!(grid.num_usable(), 100);
        assert_eq!(grid.num_holes(), 0);
        assert!(report.attempts >= 1);
        assert!(
            report.moves as usize >= 20,
            "stochastic loading leaves holes"
        );
        assert!(report.duration > 0.2, "cloud load dominates");
    }

    #[test]
    fn default_reload_time_is_order_point_three_seconds() {
        // The paper's 0.3 s constant should fall out of the physics.
        let mut sim = AssemblySimulator::with_defaults(7);
        let mean = sim.mean_reload_time(10, 10, 3, 10);
        assert!(
            (0.2..0.5).contains(&mean),
            "reload time {mean} s outside the plausible band"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = AssemblySimulator::with_defaults(3).assemble(6, 6, 2);
        let (_, b) = AssemblySimulator::with_defaults(3).assemble(6, 6, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn poor_loading_needs_more_attempts() {
        let params = AssemblyParams {
            load_probability: 0.30,
            ..AssemblyParams::default()
        };
        let mut poor = AssemblySimulator::new(params, 5);
        let mut good = AssemblySimulator::with_defaults(5);
        // Averages over several assemblies to dampen noise.
        let t_poor = poor.mean_reload_time(8, 8, 2, 8);
        let t_good = good.mean_reload_time(8, 8, 2, 8);
        assert!(
            t_poor > t_good,
            "30% loading ({t_poor}s) must be slower than 55% ({t_good}s)"
        );
    }

    #[test]
    fn lossy_moves_are_retried() {
        let params = AssemblyParams {
            move_success: 0.7,
            ..AssemblyParams::default()
        };
        let mut sim = AssemblySimulator::new(params, 11);
        let (grid, report) = sim.assemble(6, 6, 3);
        assert_eq!(grid.num_holes(), 0);
        assert!(report.move_losses > 0, "30% drag loss must show up");
    }

    #[test]
    fn larger_arrays_take_longer() {
        let t_small = AssemblySimulator::with_defaults(2).mean_reload_time(5, 5, 2, 6);
        let t_large = AssemblySimulator::with_defaults(2).mean_reload_time(14, 14, 3, 6);
        assert!(t_large > t_small);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_panics() {
        AssemblySimulator::with_defaults(0).assemble(0, 4, 1);
    }
}
