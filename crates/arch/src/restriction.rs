//! Restriction zones: the parallelism constraint of long-range Rydberg
//! interactions.
//!
//! When a gate excites atoms to Rydberg states, every atom near the
//! interacting set is disturbed if addressed simultaneously. The paper
//! models this as a *zone of restriction*: a union of discs of radius
//! `f(d)` centered at each operand, where `d` is the maximum pairwise
//! distance among operands, and `f(d) = d/2` in all experiments
//! (§III-A). Two gates may be scheduled in the same timestep only if
//! their zones do not intersect.

use crate::Site;
use serde::{Deserialize, Serialize};

/// The restriction-radius function `f(d)`.
///
/// The paper fixes `f(d) = d/2` but notes real devices may need a
/// different function, so the policy is pluggable (and swept by the
/// ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RestrictionPolicy {
    /// No restriction zones at all: any disjoint gates can run in
    /// parallel (the "ideal parallel" baseline of Fig. 5).
    None,
    /// `f(d) = d/2`, the paper's model.
    HalfDistance,
    /// `f(d) = d`, a pessimistic variant (ablation).
    FullDistance,
    /// `f(d) = c` independent of distance (ablation).
    Constant(f64),
}

impl RestrictionPolicy {
    /// Radius of the restriction discs for an interaction whose maximum
    /// pairwise operand distance is `d`.
    #[inline]
    pub fn radius(self, d: f64) -> f64 {
        match self {
            RestrictionPolicy::None => 0.0,
            RestrictionPolicy::HalfDistance => d / 2.0,
            RestrictionPolicy::FullDistance => d,
            RestrictionPolicy::Constant(c) => c,
        }
    }

    /// `true` if this policy never blocks anything.
    #[inline]
    pub fn is_none(self) -> bool {
        matches!(self, RestrictionPolicy::None)
    }
}

impl Default for RestrictionPolicy {
    /// The paper's `f(d) = d/2`.
    fn default() -> Self {
        RestrictionPolicy::HalfDistance
    }
}

/// The restriction zone of one scheduled gate: discs of `radius` around
/// each operand site.
///
/// # Example
///
/// ```
/// use na_arch::{RestrictionPolicy, RestrictionZone, Site};
///
/// let policy = RestrictionPolicy::HalfDistance;
/// // A distance-2 interaction: radius-1 discs around both operands.
/// let a = RestrictionZone::for_gate(&[Site::new(0, 0), Site::new(2, 0)], policy);
/// let b = RestrictionZone::for_gate(&[Site::new(6, 0), Site::new(8, 0)], policy);
/// assert!(!a.intersects(&b));
///
/// let c = RestrictionZone::for_gate(&[Site::new(3, 0), Site::new(5, 0)], policy);
/// assert!(a.intersects(&c)); // discs at x=2 (r=1) and x=3 (r=1) overlap
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestrictionZone {
    centers: Vec<Site>,
    radius: f64,
}

impl RestrictionZone {
    /// Builds the zone for a gate acting on `operands`.
    ///
    /// The disc radius is `policy.radius(d)` with `d` the maximum
    /// pairwise Euclidean distance among operands (0 for single-qubit
    /// gates, which therefore occupy just their own site).
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty.
    pub fn for_gate(operands: &[Site], policy: RestrictionPolicy) -> Self {
        assert!(!operands.is_empty(), "a gate must have operands");
        let mut d: f64 = 0.0;
        for i in 0..operands.len() {
            for j in (i + 1)..operands.len() {
                d = d.max(operands[i].distance(operands[j]));
            }
        }
        RestrictionZone {
            centers: operands.to_vec(),
            radius: policy.radius(d),
        }
    }

    /// The operand sites at the center of each disc.
    pub fn centers(&self) -> &[Site] {
        &self.centers
    }

    /// The disc radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Maximum pairwise distance between this gate's operands,
    /// recoverable for diagnostics.
    pub fn span(&self) -> f64 {
        let mut d: f64 = 0.0;
        for i in 0..self.centers.len() {
            for j in (i + 1)..self.centers.len() {
                d = d.max(self.centers[i].distance(self.centers[j]));
            }
        }
        d
    }

    /// `true` if `site` lies strictly inside the zone but is not one of
    /// the gate's own operands — i.e. it would be disturbed by running
    /// another gate there simultaneously.
    pub fn blocks(&self, site: Site) -> bool {
        if self.centers.contains(&site) {
            return false;
        }
        self.centers.iter().any(|c| c.distance(site) < self.radius)
    }

    /// `true` if two zones overlap, meaning their gates cannot share a
    /// timestep.
    ///
    /// Zones intersect if any disc of one intersects any disc of the
    /// other, *or* if a gate's operand site falls inside the other
    /// gate's zone (which covers the zero-radius single-qubit case).
    /// Sharing an operand site always conflicts.
    pub fn intersects(&self, other: &RestrictionZone) -> bool {
        for a in &self.centers {
            for b in &other.centers {
                if a == b {
                    return true;
                }
                // Disc-disc intersection with strict inequality: zones
                // that exactly touch do not conflict.
                if a.distance(*b) < self.radius + other.radius {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const HALF: RestrictionPolicy = RestrictionPolicy::HalfDistance;

    fn zone(ops: &[(i32, i32)]) -> RestrictionZone {
        let sites: Vec<Site> = ops.iter().map(|&(x, y)| Site::new(x, y)).collect();
        RestrictionZone::for_gate(&sites, HALF)
    }

    #[test]
    fn policy_radii() {
        assert_eq!(RestrictionPolicy::None.radius(4.0), 0.0);
        assert_eq!(RestrictionPolicy::HalfDistance.radius(4.0), 2.0);
        assert_eq!(RestrictionPolicy::FullDistance.radius(4.0), 4.0);
        assert_eq!(RestrictionPolicy::Constant(1.5).radius(4.0), 1.5);
        assert!(RestrictionPolicy::None.is_none());
        assert!(!HALF.is_none());
        assert_eq!(RestrictionPolicy::default(), HALF);
    }

    #[test]
    fn single_qubit_zone_is_a_point() {
        let z = zone(&[(3, 3)]);
        assert_eq!(z.radius(), 0.0);
        assert!(!z.blocks(Site::new(3, 4)));
        assert!(!z.blocks(Site::new(3, 3)), "own operand never blocked");
    }

    #[test]
    fn zone_radius_is_half_max_pairwise_distance() {
        let z = zone(&[(0, 0), (4, 0)]);
        assert_eq!(z.radius(), 2.0);
        assert_eq!(z.span(), 4.0);
        // Three-qubit gate: max pairwise distance governs.
        let z3 = zone(&[(0, 0), (2, 0), (0, 3)]);
        let expected = Site::new(2, 0).distance(Site::new(0, 3)) / 2.0;
        assert!((z3.radius() - expected).abs() < 1e-12);
    }

    #[test]
    fn blocks_spectator_inside_disc() {
        let z = zone(&[(0, 0), (4, 0)]);
        assert!(z.blocks(Site::new(1, 0)), "inside disc of (0,0)");
        assert!(z.blocks(Site::new(5, 0)), "inside disc of (4,0)");
        assert!(!z.blocks(Site::new(2, 0)), "exactly on both boundaries");
        assert!(!z.blocks(Site::new(7, 0)), "far away");
        assert!(!z.blocks(Site::new(0, 0)), "operands exempt");
    }

    #[test]
    fn disjoint_zones_do_not_intersect() {
        // Matches Fig. 1a: parallel gates with separated zones.
        let a = zone(&[(0, 0), (1, 0)]); // radius 0.5
        let b = zone(&[(5, 0), (6, 0)]); // radius 0.5
        assert!(!a.intersects(&b));
        assert!(!b.intersects(&a));
    }

    #[test]
    fn overlapping_discs_intersect() {
        let a = zone(&[(0, 0), (4, 0)]); // discs r=2 at x=0 and x=4
        let b = zone(&[(6, 0), (10, 0)]); // discs r=2 at x=6 and x=10
                                          // Distance between closest centers is 2 < 2 + 2.
        assert!(a.intersects(&b));
    }

    #[test]
    fn touching_zones_do_not_conflict() {
        let a = zone(&[(0, 0), (2, 0)]); // r = 1
        let b = zone(&[(4, 0), (6, 0)]); // r = 1; gap between x=2 and x=4 is 2 = r+r
        assert!(!a.intersects(&b));
    }

    #[test]
    fn shared_operand_always_conflicts() {
        let a = zone(&[(0, 0)]);
        let b = zone(&[(0, 0)]);
        assert!(a.intersects(&b));
    }

    #[test]
    fn single_qubit_gate_inside_zone_conflicts() {
        let big = zone(&[(0, 0), (4, 0)]); // r = 2
        let sq = zone(&[(1, 0)]); // point
        assert!(big.intersects(&sq));
        let far = zone(&[(8, 0)]);
        assert!(!big.intersects(&far));
    }

    #[test]
    fn none_policy_only_conflicts_on_shared_operands() {
        let p = RestrictionPolicy::None;
        let a = RestrictionZone::for_gate(&[Site::new(0, 0), Site::new(9, 0)], p);
        let b = RestrictionZone::for_gate(&[Site::new(1, 0), Site::new(2, 0)], p);
        assert!(!a.intersects(&b), "zero radius: spectators untouched");
        let c = RestrictionZone::for_gate(&[Site::new(0, 0), Site::new(3, 3)], p);
        assert!(a.intersects(&c), "shared operand still conflicts");
    }

    #[test]
    #[should_panic(expected = "operands")]
    fn empty_operands_panics() {
        RestrictionZone::for_gate(&[], HALF);
    }

    #[test]
    fn prop_intersects_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let pair = |rng: &mut StdRng| loop {
            let a = (rng.gen_range(0i32..10), rng.gen_range(0i32..10));
            let b = (rng.gen_range(0i32..10), rng.gen_range(0i32..10));
            if a != b {
                return [a, b];
            }
        };
        for _ in 0..128 {
            let z1 = zone(&pair(&mut rng));
            let z2 = zone(&pair(&mut rng));
            assert_eq!(z1.intersects(&z2), z2.intersects(&z1));
        }
    }

    #[test]
    fn prop_zone_blocked_site_implies_intersection_with_point_gate() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..128 {
            let a = (rng.gen_range(0i32..10), rng.gen_range(0i32..10));
            let b = (rng.gen_range(0i32..10), rng.gen_range(0i32..10));
            if a == b {
                continue;
            }
            let z = zone(&[a, b]);
            let p = Site::new(rng.gen_range(0i32..10), rng.gen_range(0i32..10));
            if z.blocks(p) {
                let point = RestrictionZone::for_gate(&[p], HALF);
                assert!(z.intersects(&point));
            }
        }
    }
}
