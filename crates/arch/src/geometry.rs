//! Grid coordinates and Euclidean geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A site (trap position) in the 2D atom array.
///
/// Coordinates are signed so that directional arithmetic near the edge
/// of the device is well-defined; [`Grid`](crate::Grid) decides which
/// sites actually exist.
///
/// # Example
///
/// ```
/// use na_arch::Site;
///
/// let a = Site::new(0, 0);
/// let b = Site::new(3, 4);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.distance_sq(b), 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Column index.
    pub x: i32,
    /// Row index.
    pub y: i32,
}

impl Site {
    /// Creates a site at `(x, y)`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Site { x, y }
    }

    /// Squared Euclidean distance to `other` (exact, integer).
    #[inline]
    pub fn distance_sq(self, other: Site) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Site) -> f64 {
        (self.distance_sq(other) as f64).sqrt()
    }

    /// Chebyshev (L∞) distance; a cheap lower bound used to prune
    /// neighbor scans.
    #[inline]
    pub fn chebyshev(self, other: Site) -> i32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// The site one step in `dir`.
    #[inline]
    pub fn step(self, dir: Direction) -> Site {
        let (dx, dy) = dir.delta();
        Site::new(self.x + dx, self.y + dy)
    }

    /// `true` if `self` and `other` are within Euclidean distance `d`.
    ///
    /// Uses the exact squared-integer comparison, so there is no
    /// floating-point boundary ambiguity: distance `d` exactly equal to
    /// the limit is *in range*, matching the paper's `d(u,v) ≤ d_max`.
    #[inline]
    pub fn within(self, other: Site, d: f64) -> bool {
        debug_assert!(d >= 0.0);
        (self.distance_sq(other) as f64) <= d * d
    }
}

impl From<(i32, i32)> for Site {
    fn from((x, y): (i32, i32)) -> Self {
        Site::new(x, y)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned bounding box over a non-empty set of sites.
///
/// The compiler's placement fast path collapses the mapped partners of
/// a qubit into their bounding box: the Chebyshev distance from a
/// candidate site to the box ([`BBox::chebyshev_to`]) lower-bounds the
/// Chebyshev — hence the Euclidean — distance to *every* site inside,
/// which makes `Σ w · d` prunable in O(1) per candidate.
///
/// # Example
///
/// ```
/// use na_arch::{BBox, Site};
///
/// let b = BBox::of(Site::new(2, 3)).including(Site::new(5, 1));
/// assert_eq!(b.chebyshev_to(Site::new(3, 2)), 0); // inside
/// assert_eq!(b.chebyshev_to(Site::new(9, 2)), 4); // 4 columns east
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BBox {
    /// Smallest contained column.
    pub min_x: i32,
    /// Smallest contained row.
    pub min_y: i32,
    /// Largest contained column.
    pub max_x: i32,
    /// Largest contained row.
    pub max_y: i32,
}

impl BBox {
    /// The degenerate box holding exactly `site`.
    #[inline]
    pub const fn of(site: Site) -> Self {
        BBox {
            min_x: site.x,
            min_y: site.y,
            max_x: site.x,
            max_y: site.y,
        }
    }

    /// The smallest box containing every site yielded by `sites`, or
    /// `None` for an empty iterator.
    pub fn containing(sites: impl IntoIterator<Item = Site>) -> Option<Self> {
        let mut it = sites.into_iter();
        let mut b = BBox::of(it.next()?);
        for s in it {
            b.insert(s);
        }
        Some(b)
    }

    /// Expands the box to cover `site`.
    #[inline]
    pub fn insert(&mut self, site: Site) {
        self.min_x = self.min_x.min(site.x);
        self.min_y = self.min_y.min(site.y);
        self.max_x = self.max_x.max(site.x);
        self.max_y = self.max_y.max(site.y);
    }

    /// The box expanded to cover `site` (by-value [`BBox::insert`]).
    #[inline]
    #[must_use]
    pub fn including(mut self, site: Site) -> Self {
        self.insert(site);
        self
    }

    /// `true` if `site` lies inside the box.
    #[inline]
    pub fn contains(&self, site: Site) -> bool {
        (self.min_x..=self.max_x).contains(&site.x) && (self.min_y..=self.max_y).contains(&site.y)
    }

    /// Chebyshev (L∞) distance from `site` to the nearest point of the
    /// box; 0 when `site` is inside.
    ///
    /// For every site `v` contained in the box this is a lower bound on
    /// `site.chebyshev(v)`, and therefore on `site.distance(v)`.
    #[inline]
    pub fn chebyshev_to(&self, site: Site) -> i32 {
        let dx = (self.min_x - site.x).max(site.x - self.max_x).max(0);
        let dy = (self.min_y - site.y).max(site.y - self.max_y).max(0);
        dx.max(dy)
    }
}

/// The four cardinal directions used by the row/column shift of the
/// virtual-remapping loss strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward smaller `y`.
    North,
    /// Toward larger `y`.
    South,
    /// Toward larger `x`.
    East,
    /// Toward smaller `x`.
    West,
}

impl Direction {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The unit step `(dx, dy)` of this direction.
    #[inline]
    pub fn delta(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::South => (0, 1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pythagorean_distance() {
        assert_eq!(Site::new(0, 0).distance(Site::new(3, 4)), 5.0);
        assert_eq!(Site::new(1, 1).distance(Site::new(1, 1)), 0.0);
    }

    #[test]
    fn within_is_inclusive_at_the_boundary() {
        let a = Site::new(0, 0);
        assert!(a.within(Site::new(2, 0), 2.0));
        assert!(!a.within(Site::new(3, 0), 2.0));
        // Diagonal distance sqrt(2) vs MID 1: out of range.
        assert!(!a.within(Site::new(1, 1), 1.0));
        // ... but within MID 2.
        assert!(a.within(Site::new(1, 1), 2.0));
    }

    #[test]
    fn step_moves_one_unit() {
        let s = Site::new(5, 5);
        assert_eq!(s.step(Direction::North), Site::new(5, 4));
        assert_eq!(s.step(Direction::South), Site::new(5, 6));
        assert_eq!(s.step(Direction::East), Site::new(6, 5));
        assert_eq!(s.step(Direction::West), Site::new(4, 5));
    }

    #[test]
    fn opposite_round_trips() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let s = Site::new(0, 0);
            assert_eq!(s.step(d).step(d.opposite()), s);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Site::new(2, 7).to_string(), "(2, 7)");
        assert_eq!(Direction::East.to_string(), "east");
    }

    #[test]
    fn prop_distance_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..128 {
            let a = Site::new(rng.gen_range(-50i32..50), rng.gen_range(-50i32..50));
            let b = Site::new(rng.gen_range(-50i32..50), rng.gen_range(-50i32..50));
            assert_eq!(a.distance_sq(b), b.distance_sq(a));
        }
    }

    #[test]
    fn prop_triangle_inequality() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..128 {
            let a = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            let b = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            let c = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }
    }

    #[test]
    fn bbox_grows_and_contains() {
        let mut b = BBox::of(Site::new(3, 3));
        assert!(b.contains(Site::new(3, 3)));
        assert_eq!(b.chebyshev_to(Site::new(3, 3)), 0);
        b.insert(Site::new(1, 5));
        assert_eq!((b.min_x, b.min_y, b.max_x, b.max_y), (1, 3, 3, 5));
        assert!(b.contains(Site::new(2, 4)));
        assert!(!b.contains(Site::new(0, 4)));
        assert_eq!(BBox::containing(std::iter::empty()), None);
        assert_eq!(
            BBox::containing([Site::new(1, 5), Site::new(3, 3)]),
            Some(b)
        );
    }

    #[test]
    fn bbox_chebyshev_is_zero_inside_and_rises_outside() {
        let b = BBox::of(Site::new(2, 2)).including(Site::new(4, 4));
        assert_eq!(b.chebyshev_to(Site::new(3, 3)), 0);
        assert_eq!(b.chebyshev_to(Site::new(4, 2)), 0); // corner
        assert_eq!(b.chebyshev_to(Site::new(7, 3)), 3);
        assert_eq!(b.chebyshev_to(Site::new(0, 0)), 2);
        assert_eq!(b.chebyshev_to(Site::new(5, 8)), 4);
    }

    #[test]
    fn prop_bbox_chebyshev_lower_bounds_distance_to_members() {
        // The load-bearing inequality of the placement fast path: for
        // any site set S and probe h,
        //   bbox(S).chebyshev_to(h) <= min_{v in S} h.distance(v).
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..256 {
            let n = rng.gen_range(1..8);
            let members: Vec<Site> = (0..n)
                .map(|_| Site::new(rng.gen_range(-15i32..15), rng.gen_range(-15i32..15)))
                .collect();
            let b = BBox::containing(members.iter().copied()).unwrap();
            let h = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            for &v in &members {
                assert!(b.contains(v));
                assert!(f64::from(b.chebyshev_to(h)) <= h.distance(v) + 1e-9);
                assert!(b.chebyshev_to(h) <= h.chebyshev(v));
            }
        }
    }

    #[test]
    fn prop_chebyshev_lower_bounds_euclidean() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..128 {
            let a = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            let b = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            assert!(f64::from(a.chebyshev(b)) <= a.distance(b) + 1e-9);
        }
    }
}
