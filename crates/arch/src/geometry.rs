//! Grid coordinates and Euclidean geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A site (trap position) in the 2D atom array.
///
/// Coordinates are signed so that directional arithmetic near the edge
/// of the device is well-defined; [`Grid`](crate::Grid) decides which
/// sites actually exist.
///
/// # Example
///
/// ```
/// use na_arch::Site;
///
/// let a = Site::new(0, 0);
/// let b = Site::new(3, 4);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.distance_sq(b), 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Column index.
    pub x: i32,
    /// Row index.
    pub y: i32,
}

impl Site {
    /// Creates a site at `(x, y)`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Site { x, y }
    }

    /// Squared Euclidean distance to `other` (exact, integer).
    #[inline]
    pub fn distance_sq(self, other: Site) -> i64 {
        let dx = (self.x - other.x) as i64;
        let dy = (self.y - other.y) as i64;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Site) -> f64 {
        (self.distance_sq(other) as f64).sqrt()
    }

    /// Chebyshev (L∞) distance; a cheap lower bound used to prune
    /// neighbor scans.
    #[inline]
    pub fn chebyshev(self, other: Site) -> i32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// The site one step in `dir`.
    #[inline]
    pub fn step(self, dir: Direction) -> Site {
        let (dx, dy) = dir.delta();
        Site::new(self.x + dx, self.y + dy)
    }

    /// `true` if `self` and `other` are within Euclidean distance `d`.
    ///
    /// Uses the exact squared-integer comparison, so there is no
    /// floating-point boundary ambiguity: distance `d` exactly equal to
    /// the limit is *in range*, matching the paper's `d(u,v) ≤ d_max`.
    #[inline]
    pub fn within(self, other: Site, d: f64) -> bool {
        debug_assert!(d >= 0.0);
        (self.distance_sq(other) as f64) <= d * d
    }
}

impl From<(i32, i32)> for Site {
    fn from((x, y): (i32, i32)) -> Self {
        Site::new(x, y)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The four cardinal directions used by the row/column shift of the
/// virtual-remapping loss strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward smaller `y`.
    North,
    /// Toward larger `y`.
    South,
    /// Toward larger `x`.
    East,
    /// Toward smaller `x`.
    West,
}

impl Direction {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The unit step `(dx, dy)` of this direction.
    #[inline]
    pub fn delta(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::South => (0, 1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pythagorean_distance() {
        assert_eq!(Site::new(0, 0).distance(Site::new(3, 4)), 5.0);
        assert_eq!(Site::new(1, 1).distance(Site::new(1, 1)), 0.0);
    }

    #[test]
    fn within_is_inclusive_at_the_boundary() {
        let a = Site::new(0, 0);
        assert!(a.within(Site::new(2, 0), 2.0));
        assert!(!a.within(Site::new(3, 0), 2.0));
        // Diagonal distance sqrt(2) vs MID 1: out of range.
        assert!(!a.within(Site::new(1, 1), 1.0));
        // ... but within MID 2.
        assert!(a.within(Site::new(1, 1), 2.0));
    }

    #[test]
    fn step_moves_one_unit() {
        let s = Site::new(5, 5);
        assert_eq!(s.step(Direction::North), Site::new(5, 4));
        assert_eq!(s.step(Direction::South), Site::new(5, 6));
        assert_eq!(s.step(Direction::East), Site::new(6, 5));
        assert_eq!(s.step(Direction::West), Site::new(4, 5));
    }

    #[test]
    fn opposite_round_trips() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let s = Site::new(0, 0);
            assert_eq!(s.step(d).step(d.opposite()), s);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Site::new(2, 7).to_string(), "(2, 7)");
        assert_eq!(Direction::East.to_string(), "east");
    }

    #[test]
    fn prop_distance_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..128 {
            let a = Site::new(rng.gen_range(-50i32..50), rng.gen_range(-50i32..50));
            let b = Site::new(rng.gen_range(-50i32..50), rng.gen_range(-50i32..50));
            assert_eq!(a.distance_sq(b), b.distance_sq(a));
        }
    }

    #[test]
    fn prop_triangle_inequality() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..128 {
            let a = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            let b = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            let c = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }
    }

    #[test]
    fn prop_chebyshev_lower_bounds_euclidean() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..128 {
            let a = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            let b = Site::new(rng.gen_range(-20i32..20), rng.gen_range(-20i32..20));
            assert!(f64::from(a.chebyshev(b)) <= a.distance(b) + 1e-9);
        }
    }
}
