//! The precomputed, flat-index interaction graph.
//!
//! Every hot loop of the compiler — neighbor scans during SWAP
//! scoring, BFS hops of the forced router, reroute fixup costing —
//! used to re-derive the MID topology from [`Grid`] on the fly,
//! allocating a `Vec<Site>` per hop. This module computes the whole
//! unit-disc graph once per `(grid, mid)` pair and stores it in CSR
//! (compressed sparse row) layout: one flat neighbor array plus
//! per-site offsets, so a neighbor scan is a slice iteration and a
//! BFS needs no per-hop allocation at all.
//!
//! Layout invariant: `neighbors(i)` lists exactly the sites
//! [`Grid::neighbors_within`] would return for `site_at(i)`, in the
//! same ascending [`Site`] order — the scheduler's byte-identical
//! output contract rests on this.
//!
//! Graphs are memoized process-wide per `(grid fingerprint, mid)`
//! through [`InteractionGraph::cached`] for long-lived topologies (the
//! compile path); callers probing transient one-off hole patterns
//! (e.g. per-loss-event fixup costing) should use
//! [`InteractionGraph::build`] directly and skip the cache.

use crate::{Grid, Site};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel for "no site" in flat-index arrays.
const NONE: u32 = u32::MAX;

/// The usable-atom interaction graph of one grid at one MID, in CSR
/// layout over row-major flat site indices.
///
/// # Example
///
/// ```
/// use na_arch::{Grid, InteractionGraph, Site};
///
/// let grid = Grid::new(5, 5);
/// let graph = InteractionGraph::build(&grid, 2.0);
/// let center = graph.index_of(Site::new(2, 2)).unwrap();
/// assert_eq!(graph.neighbors(center).len(), 12);
/// // CSR neighbors agree with the grid's allocating scan.
/// let from_graph: Vec<Site> = graph.neighbor_sites(center).collect();
/// assert_eq!(from_graph, grid.neighbors_within(Site::new(2, 2), 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    width: u32,
    height: u32,
    mid: f64,
    /// The MID's neighbor offset stencil: every `(dx, dy) != (0, 0)`
    /// with `dx² + dy² ≤ mid²`, in ascending `(dx, dy)` order (which
    /// makes per-site neighbor lists ascend in `Site` order).
    stencil: Vec<(i32, i32)>,
    /// CSR offsets: site `i`'s neighbors live at
    /// `neighbors[offsets[i] .. offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Flat neighbor site indices (usable sites only).
    neighbors: Vec<u32>,
    usable: Vec<bool>,
}

impl InteractionGraph {
    /// Builds the graph for `grid` at interaction distance `mid`.
    pub fn build(grid: &Grid, mid: f64) -> Self {
        let (width, height) = (grid.width(), grid.height());
        let num_sites = grid.num_sites();
        let usable: Vec<bool> = (0..num_sites)
            .map(|i| grid.is_usable(grid.site_at(i)))
            .collect();

        let r = mid.floor() as i32;
        let mut stencil = Vec::new();
        for dx in -r..=r {
            for dy in -r..=r {
                if (dx, dy) == (0, 0) {
                    continue;
                }
                let d2 = i64::from(dx) * i64::from(dx) + i64::from(dy) * i64::from(dy);
                if (d2 as f64) <= mid * mid {
                    stencil.push((dx, dy));
                }
            }
        }

        let mut offsets = Vec::with_capacity(num_sites + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for i in 0..num_sites {
            if usable[i] {
                let x = (i % width as usize) as i32;
                let y = (i / width as usize) as i32;
                for &(dx, dy) in &stencil {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx < 0 || ny < 0 || nx >= width as i32 || ny >= height as i32 {
                        continue;
                    }
                    let n = ny as usize * width as usize + nx as usize;
                    if usable[n] {
                        neighbors.push(n as u32);
                    }
                }
            }
            offsets.push(neighbors.len() as u32);
        }

        InteractionGraph {
            width,
            height,
            mid,
            stencil,
            offsets,
            neighbors,
            usable,
        }
    }

    /// The memoized graph for `(grid, mid)`, keyed on the grid's
    /// structural fingerprint. Loss simulations mutate hole patterns
    /// back and forth between a handful of topologies; the cache hands
    /// back the same `Arc` instead of rebuilding.
    pub fn cached(grid: &Grid, mid: f64) -> Arc<InteractionGraph> {
        type GraphCache = Mutex<HashMap<(u64, u64), Arc<InteractionGraph>>>;
        static CACHE: OnceLock<GraphCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (grid.fingerprint(), mid.to_bits());
        if let Some(g) = cache
            .lock()
            .expect("interaction graph cache lock")
            .get(&key)
        {
            return Arc::clone(g);
        }
        // Build outside the lock so concurrent workers never serialize
        // on one global mutex during construction; a racing builder of
        // the same key just loses its (identical) copy.
        let g = Arc::new(InteractionGraph::build(grid, mid));
        let mut map = cache.lock().expect("interaction graph cache lock");
        if let Some(existing) = map.get(&key) {
            return Arc::clone(existing);
        }
        // Bound memory for adversarial workloads (e.g. sweeps over
        // thousands of distinct hole patterns): drop everything and
        // start over rather than tracking recency.
        if map.len() >= 256 {
            map.clear();
        }
        map.insert(key, Arc::clone(&g));
        g
    }

    /// The MID this graph was built at.
    #[inline]
    pub fn mid(&self) -> f64 {
        self.mid
    }

    /// Grid width (columns).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height (rows).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of sites (including holes).
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.usable.len()
    }

    /// The neighbor offset stencil of this MID, ascending `(dx, dy)`.
    #[inline]
    pub fn stencil(&self) -> &[(i32, i32)] {
        &self.stencil
    }

    /// Flat index of `site`, or `None` if out of bounds.
    #[inline]
    pub fn index_of(&self, site: Site) -> Option<usize> {
        if site.x < 0 || site.y < 0 || site.x >= self.width as i32 || site.y >= self.height as i32 {
            return None;
        }
        Some(site.y as usize * self.width as usize + site.x as usize)
    }

    /// The site of a flat index.
    #[inline]
    pub fn site_at(&self, index: usize) -> Site {
        debug_assert!(index < self.num_sites());
        Site::new(
            (index % self.width as usize) as i32,
            (index / self.width as usize) as i32,
        )
    }

    /// `true` if the site at `index` holds an atom.
    #[inline]
    pub fn is_usable_index(&self, index: usize) -> bool {
        self.usable[index]
    }

    /// Usable neighbor indices of site `index`, ascending `Site` order.
    /// Empty for holes.
    #[inline]
    pub fn neighbors(&self, index: usize) -> &[u32] {
        &self.neighbors[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }

    /// Usable neighbor sites of site `index`, ascending `Site` order.
    pub fn neighbor_sites(&self, index: usize) -> impl Iterator<Item = Site> + '_ {
        self.neighbors(index)
            .iter()
            .map(|&n| self.site_at(n as usize))
    }

    /// Hop distance (MID-range hops over usable atoms) between two
    /// sites, or `None` if either is unusable/out of bounds or they are
    /// disconnected. Matches [`Grid::hop_distance`].
    pub fn hop_distance(&self, a: Site, b: Site, scratch: &mut BfsScratch) -> Option<u32> {
        let ai = self.index_of(a)?;
        let bi = self.index_of(b)?;
        if !self.usable[ai] || !self.usable[bi] {
            return None;
        }
        // CSR neighbor lists already contain only usable sites, so no
        // extra per-hop filter is needed.
        self.bfs_hop_distance(ai, bi, |_| true, scratch)
    }

    /// The shared BFS kernel of the hop-distance queries: shortest hop
    /// count from `ai` to `bi` over CSR neighbors passing `admit`.
    /// Both public entry points must stay on this one body — the
    /// compile path and the loss path drifting apart in BFS semantics
    /// is exactly what the digest contracts forbid.
    fn bfs_hop_distance(
        &self,
        ai: usize,
        bi: usize,
        admit: impl Fn(usize) -> bool,
        scratch: &mut BfsScratch,
    ) -> Option<u32> {
        if ai == bi {
            return Some(0);
        }
        scratch.begin(self.num_sites());
        scratch.visit(ai, 0);
        scratch.queue.push_back(ai as u32);
        while let Some(s) = scratch.queue.pop_front() {
            let d = scratch.dist[s as usize];
            for &n in self.neighbors(s as usize) {
                if scratch.is_visited(n as usize) || !admit(n as usize) {
                    continue;
                }
                if n as usize == bi {
                    return Some(d + 1);
                }
                scratch.visit(n as usize, d + 1);
                scratch.queue.push_back(n);
            }
        }
        None
    }

    /// [`InteractionGraph::hop_distance`] restricted to sites the
    /// caller still considers usable: `usable[i]` masks the site with
    /// flat index `i` (a `false` entry is treated as a hole, both as
    /// an endpoint and as a waypoint).
    ///
    /// This is the loss path's costing primitive: the campaign
    /// executor builds this graph **once** for the full (hole-free)
    /// device, then threads the shot-by-shot hole pattern through the
    /// mask instead of rebuilding a CSR graph per loss event. The
    /// result is exactly what `InteractionGraph::build(holey_grid,
    /// mid).hop_distance(a, b)` would return — BFS distance over the
    /// same effective vertex set — without the O(sites × stencil)
    /// rebuild.
    pub fn hop_distance_masked(
        &self,
        a: Site,
        b: Site,
        usable: &[bool],
        scratch: &mut BfsScratch,
    ) -> Option<u32> {
        debug_assert_eq!(usable.len(), self.num_sites(), "mask sized to the grid");
        let ai = self.index_of(a)?;
        let bi = self.index_of(b)?;
        if !self.usable[ai] || !usable[ai] || !self.usable[bi] || !usable[bi] {
            return None;
        }
        self.bfs_hop_distance(ai, bi, |i| usable[i], scratch)
    }

    /// Hop distances from `from` to every site (`None` for unreachable
    /// or unusable sites), written into `out`. Matches
    /// [`Grid::hop_distances`].
    pub fn hop_distances_into(
        &self,
        from: Site,
        scratch: &mut BfsScratch,
        out: &mut Vec<Option<u32>>,
    ) {
        out.clear();
        out.resize(self.num_sites(), None);
        let Some(fi) = self.index_of(from) else {
            return;
        };
        if !self.usable[fi] {
            return;
        }
        scratch.begin(self.num_sites());
        scratch.visit(fi, 0);
        out[fi] = Some(0);
        scratch.queue.push_back(fi as u32);
        while let Some(s) = scratch.queue.pop_front() {
            let d = scratch.dist[s as usize];
            for &n in self.neighbors(s as usize) {
                if scratch.is_visited(n as usize) {
                    continue;
                }
                scratch.visit(n as usize, d + 1);
                out[n as usize] = Some(d + 1);
                scratch.queue.push_back(n);
            }
        }
    }

    /// One deterministic BFS hop of the atom at `from` toward `goal`,
    /// avoiding `blocked` sites as destinations (the goal itself is
    /// exempt while still an intermediate waypoint). Returns the next
    /// site on a shortest hop path, or `None` if `goal` is unreachable
    /// or `from` is already there.
    ///
    /// This is the allocation-free form of the router's forced hop;
    /// the BFS expansion order (ascending neighbor sites) and the
    /// walk-back tie-breaks match the original exactly.
    pub fn hop_toward(
        &self,
        from: Site,
        goal: Site,
        blocked: &[Site],
        scratch: &mut BfsScratch,
    ) -> Option<Site> {
        if from == goal {
            return None;
        }
        let fi = self.index_of(from)?;
        let gi = self.index_of(goal)?;
        if !self.usable[fi] {
            return None;
        }
        scratch.begin(self.num_sites());
        scratch.prev.resize(self.num_sites(), NONE);
        scratch.visit(fi, 0);
        scratch.prev[fi] = fi as u32;
        scratch.queue.push_back(fi as u32);
        let mut found = false;
        'bfs: while let Some(s) = scratch.queue.pop_front() {
            if s as usize == gi {
                found = true;
                break 'bfs;
            }
            for &n in self.neighbors(s as usize) {
                if scratch.is_visited(n as usize) {
                    continue;
                }
                let site = self.site_at(n as usize);
                if n as usize != gi && blocked.contains(&site) {
                    continue;
                }
                scratch.visit(n as usize, 0);
                scratch.prev[n as usize] = s;
                scratch.queue.push_back(n);
            }
        }
        if !found {
            return None;
        }
        // Walk back from the goal to the hop adjacent to `from`.
        let mut cur = gi;
        while scratch.prev[cur] as usize != fi {
            cur = scratch.prev[cur] as usize;
        }
        let hop = self.site_at(cur);
        if blocked.contains(&hop) {
            return None;
        }
        Some(hop)
    }

    /// Size of the largest connected component of usable atoms.
    /// Matches [`Grid::largest_component`].
    pub fn largest_component(&self, scratch: &mut BfsScratch) -> usize {
        scratch.begin(self.num_sites());
        let mut best = 0usize;
        for start in 0..self.num_sites() {
            if !self.usable[start] || scratch.is_visited(start) {
                continue;
            }
            let mut size = 0usize;
            scratch.visit(start, 0);
            scratch.queue.push_back(start as u32);
            while let Some(s) = scratch.queue.pop_front() {
                size += 1;
                for &n in self.neighbors(s as usize) {
                    if !scratch.is_visited(n as usize) {
                        scratch.visit(n as usize, 0);
                        scratch.queue.push_back(n);
                    }
                }
            }
            best = best.max(size);
        }
        best
    }
}

/// Reusable BFS working memory: epoch-stamped visited marks, a
/// distance array, a predecessor array, and the frontier queue.
/// `begin` resets in O(1) by bumping the epoch instead of clearing.
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    mark: Vec<u32>,
    epoch: u32,
    dist: Vec<u32>,
    prev: Vec<u32>,
    queue: VecDeque<u32>,
    visits: u64,
}

impl BfsScratch {
    /// Fresh scratch; buffers grow to the graph size on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Cumulative count of node expansions across every search this
    /// scratch has run. Never reset by `begin`, so instrumentation can
    /// read it before and after a search and record the delta.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.visits
    }

    fn begin(&mut self, num_sites: usize) {
        if self.mark.len() < num_sites {
            self.mark.resize(num_sites, 0);
            self.dist.resize(num_sites, 0);
            self.prev.resize(num_sites, NONE);
        }
        self.queue.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale marks could alias; hard-reset once
            // every 2^32 searches.
            self.mark.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn visit(&mut self, index: usize, dist: u32) {
        self.mark[index] = self.epoch;
        self.dist[index] = dist;
        self.visits += 1;
    }

    #[inline]
    fn is_visited(&self, index: usize) -> bool {
        self.mark[index] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_grid(rng: &mut StdRng, w: u32, h: u32, holes: usize) -> Grid {
        let mut g = Grid::new(w, h);
        for _ in 0..holes {
            let s = Site::new(rng.gen_range(0..w as i32), rng.gen_range(0..h as i32));
            if g.is_usable(s) {
                g.remove_atom(s);
            }
        }
        g
    }

    #[test]
    fn csr_neighbors_match_grid_scan_exactly() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..16 {
            let g = random_grid(&mut rng, 8, 7, 9);
            for &mid in &[1.0, 2.0, 3.0, 4.4] {
                let graph = InteractionGraph::build(&g, mid);
                for i in 0..g.num_sites() {
                    let site = g.site_at(i);
                    let expect = if g.is_usable(site) {
                        g.neighbors_within(site, mid)
                    } else {
                        Vec::new()
                    };
                    let got: Vec<Site> = graph.neighbor_sites(i).collect();
                    assert_eq!(got, expect, "site {site} at MID {mid}");
                }
            }
        }
    }

    #[test]
    fn hop_distance_matches_grid_bfs() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut scratch = BfsScratch::new();
        for _ in 0..12 {
            let g = random_grid(&mut rng, 7, 7, 8);
            let mid = f64::from(rng.gen_range(1u32..4));
            let graph = InteractionGraph::build(&g, mid);
            for _ in 0..24 {
                let a = Site::new(rng.gen_range(0..7), rng.gen_range(0..7));
                let b = Site::new(rng.gen_range(0..7), rng.gen_range(0..7));
                assert_eq!(
                    graph.hop_distance(a, b, &mut scratch),
                    g.hop_distance(a, b, mid),
                    "{a}->{b} at MID {mid}"
                );
            }
        }
    }

    #[test]
    fn hop_distances_into_matches_grid() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut scratch = BfsScratch::new();
        let mut out = Vec::new();
        for _ in 0..8 {
            let g = random_grid(&mut rng, 6, 6, 6);
            let graph = InteractionGraph::build(&g, 2.0);
            let from = Site::new(rng.gen_range(0..6), rng.gen_range(0..6));
            graph.hop_distances_into(from, &mut scratch, &mut out);
            assert_eq!(out, g.hop_distances(from, 2.0));
        }
    }

    #[test]
    fn masked_hop_distance_matches_holey_rebuild() {
        // The loss-path contract: BFS over the full-grid graph with a
        // usability mask must agree with a graph rebuilt from the
        // holey grid, for every endpoint pair.
        let mut rng = StdRng::seed_from_u64(31);
        let mut scratch = BfsScratch::new();
        for _ in 0..10 {
            let full = Grid::new(7, 6);
            let holey = random_grid(&mut rng, 7, 6, 10);
            let mid = f64::from(rng.gen_range(1u32..4));
            let full_graph = InteractionGraph::build(&full, mid);
            let holey_graph = InteractionGraph::build(&holey, mid);
            for _ in 0..32 {
                let a = Site::new(rng.gen_range(0..7), rng.gen_range(0..6));
                let b = Site::new(rng.gen_range(0..7), rng.gen_range(0..6));
                assert_eq!(
                    full_graph.hop_distance_masked(a, b, holey.usable_mask(), &mut scratch),
                    holey_graph.hop_distance(a, b, &mut scratch),
                    "{a}->{b} at MID {mid}"
                );
            }
        }
    }

    #[test]
    fn out_of_bounds_lookups_are_none() {
        let g = Grid::new(3, 3);
        let graph = InteractionGraph::build(&g, 1.0);
        assert_eq!(graph.index_of(Site::new(-1, 0)), None);
        assert_eq!(graph.index_of(Site::new(3, 0)), None);
        let mut scratch = BfsScratch::new();
        assert_eq!(
            graph.hop_distance(Site::new(0, 0), Site::new(9, 9), &mut scratch),
            None
        );
    }

    #[test]
    fn largest_component_matches_grid() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut scratch = BfsScratch::new();
        for _ in 0..12 {
            let g = random_grid(&mut rng, 6, 5, 10);
            let mid = f64::from(rng.gen_range(1u32..3));
            let graph = InteractionGraph::build(&g, mid);
            assert_eq!(
                graph.largest_component(&mut scratch),
                g.largest_component(mid)
            );
        }
    }

    #[test]
    fn cached_returns_shared_graphs() {
        let g = Grid::new(4, 4);
        let a = InteractionGraph::cached(&g, 2.0);
        let b = InteractionGraph::cached(&g, 2.0);
        assert!(Arc::ptr_eq(&a, &b));
        let c = InteractionGraph::cached(&g, 3.0);
        assert!(!Arc::ptr_eq(&a, &c));
        // Same hole pattern built independently shares an entry.
        let mut g2 = Grid::new(4, 4);
        g2.remove_atom(Site::new(1, 1));
        let mut g3 = Grid::new(4, 4);
        g3.remove_atom(Site::new(1, 1));
        assert!(Arc::ptr_eq(
            &InteractionGraph::cached(&g2, 2.0),
            &InteractionGraph::cached(&g3, 2.0)
        ));
    }

    #[test]
    fn scratch_epochs_do_not_leak_between_searches() {
        let g = Grid::new(6, 1);
        let graph = InteractionGraph::build(&g, 1.0);
        let mut scratch = BfsScratch::new();
        for _ in 0..100 {
            assert_eq!(
                graph.hop_distance(Site::new(0, 0), Site::new(5, 0), &mut scratch),
                Some(5)
            );
        }
    }
}
