//! Hardware model for neutral-atom (NA) quantum devices.
//!
//! The paper models an NA device as a regular 2D grid of optically
//! trapped atoms with three architectural properties (paper §III-A):
//!
//! * **long-range interactions** — two atoms can interact iff their
//!   Euclidean distance is at most the *maximum interaction distance*
//!   (MID), so the effective topology is a unit-disc graph over the grid;
//! * **restriction zones** — an interaction at pairwise max distance `d`
//!   blocks all atoms within radius `f(d) = d/2` of any operand for its
//!   duration; two gates may run in parallel only if their zones do not
//!   intersect;
//! * **atom loss** — traps are weak, so atoms vanish between (and
//!   during) shots, leaving *holes* in the grid.
//!
//! This crate provides:
//!
//! * [`Site`] — integer grid coordinates with Euclidean geometry;
//! * [`Grid`] — the atom array: dimensions, holes, in-range neighbor
//!   queries, BFS paths, and connectivity analysis;
//! * [`RestrictionPolicy`] / [`RestrictionZone`] — the parallelism
//!   predicate;
//! * [`VirtualMap`] — the hardware address-indirection table behind the
//!   virtual-remapping loss strategy (a ~40 ns lookup-table update in
//!   hardware, borrowed from DRAM sparing).

pub mod assembly;
pub mod geometry;
pub mod grid;
pub mod interaction;
pub mod restriction;
pub mod vmap;

pub use assembly::{AssemblyParams, AssemblyReport, AssemblySimulator};
pub use geometry::{BBox, Direction, Site};
pub use grid::Grid;
pub use interaction::{BfsScratch, InteractionGraph};
pub use restriction::{RestrictionPolicy, RestrictionZone};
pub use vmap::{NoSpareError, ShiftScratch, VirtualMap};
