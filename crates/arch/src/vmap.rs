//! Virtual address remapping for atom-loss recovery.
//!
//! The *virtual remapping* strategy (paper §VI, Fig. 9b) borrows from
//! DRAM sparing: instead of physically refilling a lost trap, a hardware
//! lookup table redirects each program-facing *address* to a possibly
//! different physical trap. Updating the table takes ~40 ns, versus
//! ~0.3 s for an array reload. When an in-use atom is lost, the
//! addresses from the hole to the device edge shift one usable atom
//! outward, absorbing a spare.

use crate::{Direction, Grid, Site};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Sentinel in the flat tables for "identity at this index".
const NONE: u32 = u32::MAX;

/// Error returned by [`VirtualMap::shift_from`] when no spare capacity
/// exists in the requested direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSpareError {
    /// The direction that was attempted.
    pub direction: Direction,
}

impl fmt::Display for NoSpareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no spare atom toward {} to absorb the shift",
            self.direction
        )
    }
}

impl Error for NoSpareError {}

/// Reusable working memory for [`VirtualMap::shift_from_with`].
///
/// One shift needs four small ordered lists (the in-use addresses on
/// the ray, the absorbing targets, the freed traps, and the displaced
/// unused addresses) plus the change list it reports. The campaign
/// shot loop costs one shift per interfering loss; holding the
/// buffers in the caller's strategy state instead of allocating them
/// per call removes the last allocations on that path. The buffers
/// are plain state — reuse changes nothing about the shift itself
/// (the campaign digest tests pin this).
#[derive(Debug, Clone, Default)]
pub struct ShiftScratch {
    shifted: Vec<Site>,
    targets: Vec<Site>,
    freed: Vec<Site>,
    displaced: Vec<Site>,
    changes: Vec<(Site, Site)>,
}

impl ShiftScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    pub fn new() -> Self {
        ShiftScratch::default()
    }

    /// The `(address, new_physical)` pairs changed by the most recent
    /// successful [`VirtualMap::shift_from_with`].
    pub fn changes(&self) -> &[(Site, Site)] {
        &self.changes
    }
}

/// A bijective indirection table from program-facing addresses to
/// physical trap sites.
///
/// Both sides of the mapping are [`Site`]s: an *address* is the location
/// the compiled program believes a qubit occupies; the map resolves it
/// to the trap that actually holds the atom. A fresh map is the
/// identity.
///
/// Both directions are dense flat `Vec`s indexed by the grid's
/// row-major flat site index (the `QubitMap` layout), sized lazily on
/// the first [`VirtualMap::shift_from`]: `resolve`/`address_of` are
/// O(1) loads on the loss executor's hottest paths (per-shot measured
/// sets, interference checks, fixup costing) instead of `HashMap`
/// probes. Sites outside the adopted grid always resolve to
/// themselves, matching the old sparse-map behavior.
///
/// # Example
///
/// ```
/// use na_arch::{Direction, Grid, Site, VirtualMap};
///
/// let mut grid = Grid::new(5, 1);
/// let mut vmap = VirtualMap::new();
/// // Program uses addresses (0,0) and (1,0); (2..4,0) are spares.
/// grid.remove_atom(Site::new(1, 0));
/// let in_use = |a: Site| a.x <= 1 && a.y == 0;
/// vmap.shift_from(&grid, Site::new(1, 0), Direction::East, &in_use).unwrap();
/// assert_eq!(vmap.resolve(Site::new(1, 0)), Site::new(2, 0));
/// assert_eq!(vmap.resolve(Site::new(0, 0)), Site::new(0, 0));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualMap {
    width: u32,
    height: u32,
    /// `fwd[flat(addr)]` is the flat index of the physical trap, or
    /// [`NONE`] for identity.
    fwd: Vec<u32>,
    /// `inv[flat(phys)]` is the flat index of the address, or [`NONE`].
    inv: Vec<u32>,
}

impl PartialEq for VirtualMap {
    /// Two maps are equal iff they represent the same indirection:
    /// the same ordered non-identity `address → physical` pairs,
    /// compared as sites so the adopted dimensions don't matter. An
    /// unsized fresh map equals a sized map that was reset.
    fn eq(&self, other: &Self) -> bool {
        let as_sites = |v: &Self, (a, p): (usize, u32)| (v.site_of(a), v.site_of(p as usize));
        self.non_identity_entries()
            .map(|e| as_sites(self, e))
            .eq(other.non_identity_entries().map(|e| as_sites(other, e)))
    }
}

impl VirtualMap {
    /// Creates an identity map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flat index of `site`, if it lies within the adopted grid.
    #[inline]
    fn index_of(&self, site: Site) -> Option<usize> {
        if site.x >= 0
            && site.y >= 0
            && (site.x as u32) < self.width
            && (site.y as u32) < self.height
        {
            Some(site.y as usize * self.width as usize + site.x as usize)
        } else {
            None
        }
    }

    /// The site of a flat index within the adopted grid.
    #[inline]
    fn site_of(&self, index: usize) -> Site {
        Site::new(
            (index % self.width as usize) as i32,
            (index / self.width as usize) as i32,
        )
    }

    /// Non-identity `(address index, physical index)` pairs, ascending
    /// in address index.
    fn non_identity_entries(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.fwd
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p != NONE && p as usize != i)
            .map(|(i, &p)| (i, p))
    }

    /// Adopts `grid`'s dimensions on first use.
    ///
    /// # Panics
    ///
    /// Panics if the map was already sized for a different device.
    fn ensure_sized(&mut self, grid: &Grid) {
        if self.width == 0 {
            self.width = grid.width();
            self.height = grid.height();
            self.fwd = vec![NONE; grid.num_sites()];
            self.inv = vec![NONE; grid.num_sites()];
            return;
        }
        assert!(
            self.width == grid.width() && self.height == grid.height(),
            "virtual map sized for {}x{} used with a {}x{} grid",
            self.width,
            self.height,
            grid.width(),
            grid.height()
        );
    }

    /// The physical trap an address currently resolves to.
    #[inline]
    pub fn resolve(&self, addr: Site) -> Site {
        match self.index_of(addr) {
            Some(i) => match self.fwd[i] {
                NONE => addr,
                p => self.site_of(p as usize),
            },
            None => addr,
        }
    }

    /// The address currently resolving to a physical trap.
    #[inline]
    pub fn address_of(&self, phys: Site) -> Site {
        match self.index_of(phys) {
            Some(i) => match self.inv[i] {
                NONE => phys,
                a => self.site_of(a as usize),
            },
            None => phys,
        }
    }

    /// `true` if no address has been remapped.
    pub fn is_identity(&self) -> bool {
        self.non_identity_entries().next().is_none()
    }

    /// Number of addresses resolving somewhere other than themselves.
    pub fn remapped_count(&self) -> usize {
        self.non_identity_entries().count()
    }

    /// Resets to the identity (used after an array reload), keeping
    /// the flat tables allocated.
    pub fn reset(&mut self) {
        self.fwd.fill(NONE);
        self.inv.fill(NONE);
    }

    fn set(&mut self, addr: Site, phys: Site) {
        let ai = self.index_of(addr).expect("address on the adopted grid");
        let pi = self.index_of(phys).expect("trap on the adopted grid");
        self.fwd[ai] = pi as u32;
        self.inv[pi] = ai as u32;
    }

    /// Shifts addresses away from a lost atom, absorbing one spare.
    ///
    /// `lost_phys` is the trap whose atom was just lost (the caller must
    /// already have called [`Grid::remove_atom`]). Every in-use address
    /// whose atom lies on the ray from `lost_phys` to the device edge in
    /// `dir` is reassigned to the next usable atoms along that ray, in
    /// order; displaced unused addresses rotate back onto the freed
    /// traps so the map stays a bijection.
    ///
    /// `in_use_addr` reports whether an *address* is used by the
    /// compiled program.
    ///
    /// Returns the `(address, new_physical)` pairs that changed.
    ///
    /// # Errors
    ///
    /// Returns [`NoSpareError`] if the usable atoms toward the edge
    /// cannot absorb the shifted addresses; the caller must then fall
    /// back to an array reload.
    pub fn shift_from(
        &mut self,
        grid: &Grid,
        lost_phys: Site,
        dir: Direction,
        in_use_addr: &dyn Fn(Site) -> bool,
    ) -> Result<Vec<(Site, Site)>, NoSpareError> {
        let mut scratch = ShiftScratch::new();
        self.shift_from_with(grid, lost_phys, dir, in_use_addr, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.changes))
    }

    /// [`VirtualMap::shift_from`] reusing caller-held working memory —
    /// the allocation-free form the campaign shot loop calls once per
    /// interfering loss. Returns the number of changed addresses; the
    /// pairs themselves are in [`ShiftScratch::changes`].
    ///
    /// # Errors
    ///
    /// See [`VirtualMap::shift_from`].
    pub fn shift_from_with(
        &mut self,
        grid: &Grid,
        lost_phys: Site,
        dir: Direction,
        in_use_addr: &dyn Fn(Site) -> bool,
        scratch: &mut ShiftScratch,
    ) -> Result<usize, NoSpareError> {
        self.ensure_sized(grid);
        let ShiftScratch {
            shifted,
            targets,
            freed,
            displaced,
            changes,
        } = scratch;
        shifted.clear();
        targets.clear();
        freed.clear();
        displaced.clear();
        changes.clear();

        // In-use addresses whose atom sits on the ray from the hole
        // (inclusive) to the device edge, in ray order. The ray is
        // walked directly — it never needs materializing.
        let mut cur = lost_phys;
        while grid.contains(cur) {
            if cur == lost_phys || grid.is_usable(cur) {
                let addr = self.address_of(cur);
                if in_use_addr(addr) {
                    shifted.push(addr);
                }
            }
            cur = cur.step(dir);
        }
        if shifted.is_empty() {
            return Ok(0);
        }

        // Usable atoms strictly beyond the hole, in ray order; only
        // the first `shifted.len()` are consumed.
        let mut cur = lost_phys.step(dir);
        while grid.contains(cur) {
            if grid.is_usable(cur) {
                targets.push(cur);
            }
            cur = cur.step(dir);
        }
        if targets.len() < shifted.len() {
            return Err(NoSpareError { direction: dir });
        }
        targets.truncate(shifted.len());

        // Old homes freed by the shift (starting at the hole itself).
        freed.extend(shifted.iter().map(|&a| self.resolve(a)));

        // Unused addresses displaced from consumed targets rotate onto
        // freed traps, keeping the map bijective.
        displaced.extend(
            targets
                .iter()
                .map(|&t| self.address_of(t))
                .filter(|a| !shifted.contains(a)),
        );

        for (&addr, &target) in shifted.iter().zip(targets.iter()) {
            if self.resolve(addr) != target {
                self.set(addr, target);
                changes.push((addr, target));
            }
        }
        let reclaimed = freed.iter().filter(|p| !targets.contains(p));
        for (&addr, &phys) in displaced.iter().zip(reclaimed) {
            self.set(addr, phys);
        }
        Ok(changes.len())
    }

    /// Picks the cardinal direction with the most spare (usable but
    /// unused) atoms between `lost_phys` and the device edge, the
    /// paper's shift-direction heuristic. Returns `None` if no direction
    /// has a spare.
    pub fn best_shift_direction(
        &self,
        grid: &Grid,
        lost_phys: Site,
        in_use_addr: &dyn Fn(Site) -> bool,
    ) -> Option<Direction> {
        let mut best: Option<(usize, Direction)> = None;
        for dir in Direction::ALL {
            let mut spares = 0usize;
            let mut cur = lost_phys.step(dir);
            while grid.contains(cur) {
                if grid.is_usable(cur) && !in_use_addr(self.address_of(cur)) {
                    spares += 1;
                }
                cur = cur.step(dir);
            }
            if spares > 0 && best.is_none_or(|(s, _)| spares > s) {
                best = Some((spares, dir));
            }
        }
        best.map(|(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn assert_bijective(vmap: &VirtualMap, grid: &Grid) {
        let mut seen = HashSet::new();
        for addr in grid.sites() {
            let p = vmap.resolve(addr);
            assert!(seen.insert(p), "two addresses resolve to {p}");
            assert_eq!(vmap.address_of(p), addr, "inverse inconsistent at {p}");
        }
    }

    #[test]
    fn fresh_map_is_identity() {
        let v = VirtualMap::new();
        assert!(v.is_identity());
        assert_eq!(v.remapped_count(), 0);
        assert_eq!(v.resolve(Site::new(3, 4)), Site::new(3, 4));
        assert_eq!(v.address_of(Site::new(3, 4)), Site::new(3, 4));
    }

    #[test]
    fn shift_moves_addresses_over_the_hole() {
        // Row of 5; addresses (0..2,0) in use, (3..4,0) spare.
        let mut grid = Grid::new(5, 1);
        let mut v = VirtualMap::new();
        let in_use = |a: Site| a.y == 0 && a.x <= 2;
        grid.remove_atom(Site::new(1, 0));
        let changes = v
            .shift_from(&grid, Site::new(1, 0), Direction::East, &in_use)
            .unwrap();
        // Addresses 1 and 2 shift east by one.
        assert_eq!(v.resolve(Site::new(1, 0)), Site::new(2, 0));
        assert_eq!(v.resolve(Site::new(2, 0)), Site::new(3, 0));
        assert_eq!(v.resolve(Site::new(0, 0)), Site::new(0, 0));
        assert_eq!(changes.len(), 2);
        assert_bijective(&v, &grid);
        // No address in use resolves to the hole.
        for x in 0..=2 {
            assert_ne!(v.resolve(Site::new(x, 0)), Site::new(1, 0));
        }
    }

    #[test]
    fn shift_skips_preexisting_holes() {
        let mut grid = Grid::new(5, 1);
        let mut v = VirtualMap::new();
        let in_use = |a: Site| a.y == 0 && a.x <= 1;
        grid.remove_atom(Site::new(2, 0)); // spare hole
        grid.remove_atom(Site::new(1, 0)); // in-use atom lost
        v.shift_from(&grid, Site::new(1, 0), Direction::East, &in_use)
            .unwrap();
        // Address 1 skips the hole at x=2 and lands on x=3.
        assert_eq!(v.resolve(Site::new(1, 0)), Site::new(3, 0));
        assert_bijective(&v, &grid);
    }

    #[test]
    fn shift_without_spares_errors() {
        let mut grid = Grid::new(2, 1);
        let mut v = VirtualMap::new();
        let in_use = |_: Site| true; // whole device in use
        grid.remove_atom(Site::new(0, 0));
        let err = v
            .shift_from(&grid, Site::new(0, 0), Direction::East, &in_use)
            .unwrap_err();
        assert_eq!(err.direction, Direction::East);
        assert_eq!(
            err.to_string(),
            "no spare atom toward east to absorb the shift"
        );
    }

    #[test]
    fn shift_of_unused_atom_is_a_noop() {
        let mut grid = Grid::new(4, 1);
        let mut v = VirtualMap::new();
        let in_use = |a: Site| a == Site::new(0, 0);
        grid.remove_atom(Site::new(2, 0));
        let changes = v
            .shift_from(&grid, Site::new(2, 0), Direction::East, &in_use)
            .unwrap();
        assert!(changes.is_empty());
        assert!(v.is_identity());
    }

    #[test]
    fn second_loss_composes_with_first() {
        let mut grid = Grid::new(6, 1);
        let mut v = VirtualMap::new();
        let in_use = |a: Site| a.y == 0 && a.x <= 2;
        // First loss at x=1.
        grid.remove_atom(Site::new(1, 0));
        v.shift_from(&grid, Site::new(1, 0), Direction::East, &in_use)
            .unwrap();
        // Now address 1 -> (2,0), address 2 -> (3,0). Lose (3,0).
        grid.remove_atom(Site::new(3, 0));
        v.shift_from(&grid, Site::new(3, 0), Direction::East, &in_use)
            .unwrap();
        assert_eq!(v.resolve(Site::new(2, 0)), Site::new(4, 0));
        assert_eq!(v.resolve(Site::new(1, 0)), Site::new(2, 0));
        assert_bijective(&v, &grid);
    }

    #[test]
    fn best_direction_prefers_more_spares() {
        let grid = Grid::new(7, 1);
        let v = VirtualMap::new();
        // Program occupies x in 2..=4; one spare west (x 0..1 minus lost),
        // two east.
        let in_use = |a: Site| a.y == 0 && (2..=4).contains(&a.x);
        let dir = v
            .best_shift_direction(&grid, Site::new(3, 0), &in_use)
            .unwrap();
        assert_eq!(dir, Direction::East);
    }

    #[test]
    fn best_direction_none_when_everything_used() {
        let grid = Grid::new(3, 1);
        let v = VirtualMap::new();
        let in_use = |_: Site| true;
        assert_eq!(
            v.best_shift_direction(&grid, Site::new(1, 0), &in_use),
            None
        );
    }

    #[test]
    fn out_of_grid_addresses_stay_identity() {
        // The flat tables cover only the adopted device; anything
        // outside resolves to itself, like the old sparse map.
        let mut grid = Grid::new(4, 1);
        let mut v = VirtualMap::new();
        let far = Site::new(100, -3);
        assert_eq!(v.resolve(far), far);
        assert_eq!(v.address_of(far), far);
        let in_use = |a: Site| a.x <= 1 && a.y == 0;
        grid.remove_atom(Site::new(0, 0));
        v.shift_from(&grid, Site::new(0, 0), Direction::East, &in_use)
            .unwrap();
        assert_eq!(v.resolve(far), far);
        assert_eq!(v.address_of(far), far);
    }

    #[test]
    fn reset_map_equals_fresh_map() {
        // Semantic equality: a sized-then-reset map and a fresh
        // (unsized) map are both the identity.
        let mut grid = Grid::new(4, 1);
        let mut v = VirtualMap::new();
        let in_use = |a: Site| a.x <= 1 && a.y == 0;
        grid.remove_atom(Site::new(0, 0));
        v.shift_from(&grid, Site::new(0, 0), Direction::East, &in_use)
            .unwrap();
        assert_ne!(v, VirtualMap::new());
        v.reset();
        assert_eq!(v, VirtualMap::new());
    }

    #[test]
    fn reset_restores_identity() {
        let mut grid = Grid::new(4, 1);
        let mut v = VirtualMap::new();
        let in_use = |a: Site| a.x <= 1 && a.y == 0;
        grid.remove_atom(Site::new(0, 0));
        v.shift_from(&grid, Site::new(0, 0), Direction::East, &in_use)
            .unwrap();
        assert!(!v.is_identity());
        v.reset();
        assert!(v.is_identity());
    }

    /// One reused scratch across a whole random loss sequence produces
    /// the same maps and the same change lists as the allocating form.
    #[test]
    fn prop_shift_with_scratch_matches_allocating_shift() {
        let mut rng = StdRng::seed_from_u64(23);
        for round in 0..24 {
            let mut grid = Grid::new(9, 3);
            let mut a = VirtualMap::new();
            let mut b = VirtualMap::new();
            let mut scratch = ShiftScratch::new();
            let in_use = |addr: Site| addr.x < 5;
            for _ in 0..rng.gen_range(1..8usize) {
                let lost = Site::new(rng.gen_range(0i32..9), rng.gen_range(0i32..3));
                if !grid.is_usable(lost) {
                    continue;
                }
                grid.remove_atom(lost);
                let dir = match a.best_shift_direction(&grid, lost, &in_use) {
                    Some(d) => d,
                    None => break,
                };
                let via_alloc = a.shift_from(&grid, lost, dir, &in_use);
                let via_scratch = b.shift_from_with(&grid, lost, dir, &in_use, &mut scratch);
                match (via_alloc, via_scratch) {
                    (Ok(changes), Ok(n)) => {
                        assert_eq!(changes.len(), n, "round {round}");
                        assert_eq!(changes, scratch.changes(), "round {round}");
                    }
                    (Err(ea), Err(eb)) => {
                        assert_eq!(ea, eb, "round {round}");
                        break;
                    }
                    (x, y) => panic!("round {round}: diverged ({x:?} vs {y:?})"),
                }
                assert_eq!(a, b, "round {round}: maps diverged");
            }
        }
    }

    /// Random loss sequences keep the map bijective and never leave
    /// an in-use address resolving to a hole.
    #[test]
    fn prop_shift_preserves_bijection() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let mut grid = Grid::new(8, 4);
            let mut v = VirtualMap::new();
            // Program occupies the left half of the device.
            let in_use = |a: Site| a.x < 4;
            for _ in 0..rng.gen_range(1..6usize) {
                let lost = Site::new(rng.gen_range(0i32..8), rng.gen_range(0i32..4));
                if !grid.is_usable(lost) {
                    continue;
                }
                grid.remove_atom(lost);
                // Only shift when an in-use address lived there.
                if !in_use(v.address_of(lost)) {
                    continue;
                }
                if let Some(dir) = v.best_shift_direction(&grid, lost, &in_use) {
                    if v.shift_from(&grid, lost, dir, &in_use).is_err() {
                        break;
                    }
                } else {
                    break;
                }
                assert_bijective(&v, &grid);
                for addr in grid.sites().filter(|&a| in_use(a)) {
                    assert!(
                        grid.is_usable(v.resolve(addr)),
                        "in-use address {addr} resolves to a hole"
                    );
                }
            }
        }
    }
}
