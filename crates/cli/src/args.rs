//! A tiny zero-dependency flag parser.
//!
//! The approved offline dependency set has no CLI crate, and the
//! toolkit's needs are modest: `--key value` pairs, boolean `--flag`s,
//! and one positional subcommand.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ArgError {}

/// Parsed command line: one subcommand plus `--key value` / `--flag`
/// options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    positional: Option<String>,
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name). Options begin
    /// with `--`; an option followed by another option or nothing is a
    /// boolean flag.
    ///
    /// # Errors
    ///
    /// Rejects more than one stray positional argument after the
    /// subcommand (subcommands that take no positional reject the
    /// first one themselves, so the error message stays the same).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let is_value = iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false);
                if is_value {
                    let v = iter.next().expect("peeked");
                    args.values.insert(key.to_string(), v);
                } else {
                    args.flags.push(key.to_string());
                }
            } else if args.subcommand.is_none() {
                args.subcommand = Some(tok);
            } else if args.positional.is_none() {
                args.positional = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// The single trailing positional argument, if any (only `natoms
    /// trace <file>` accepts one; every other subcommand rejects it).
    pub fn positional(&self) -> Option<&str> {
        self.positional.as_deref()
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// `true` if the boolean flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A parsed numeric/typed option with a default.
    ///
    /// # Errors
    ///
    /// Reports the offending key and value on parse failure.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value {v:?} for --{key}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse(&[
            "compile",
            "--benchmark",
            "qaoa",
            "--size",
            "30",
            "--timeline",
        ]);
        assert_eq!(a.subcommand(), Some("compile"));
        assert_eq!(a.get("benchmark"), Some("qaoa"));
        assert_eq!(a.parse_or("size", 0u32).unwrap(), 30);
        assert!(a.flag("timeline"));
        assert!(!a.flag("qasm"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["sweep"]);
        assert_eq!(a.get_or("benchmark", "bv"), "bv");
        assert_eq!(a.parse_or("mid", 3.0f64).unwrap(), 3.0);
    }

    #[test]
    fn negative_numbers_are_values() {
        let a = parse(&["x", "--offset", "-3"]);
        assert_eq!(a.parse_or("offset", 0i32).unwrap(), -3);
    }

    #[test]
    fn one_trailing_positional_is_kept() {
        let a = parse(&["trace", "t.json"]);
        assert_eq!(a.subcommand(), Some("trace"));
        assert_eq!(a.positional(), Some("t.json"));
    }

    #[test]
    fn stray_positionals_rejected() {
        let err = Args::parse(["a".to_string(), "b".to_string(), "c".to_string()]).unwrap_err();
        assert!(err.to_string().contains("unexpected"));
    }

    #[test]
    fn bad_numeric_value_reports_key() {
        let a = parse(&["x", "--size", "many"]);
        let err = a.parse_or("size", 1u32).unwrap_err();
        assert!(err.to_string().contains("--size"));
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let a = parse(&["run", "--verbose"]);
        assert!(a.flag("verbose"));
    }
}
