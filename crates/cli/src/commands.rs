//! Subcommand implementations.
//!
//! The sweep-shaped subcommands (`sweep`, `campaign`) run through
//! `na-engine`'s parallel worker pool: `--workers N` bounds the pool
//! (default: all cores — results are identical at any worker count),
//! and `--jsonl` switches the output to the engine's structured
//! JSON-lines rows for downstream tooling.

use crate::args::{ArgError, Args};
use na_arch::{AssemblySimulator, Grid, RestrictionPolicy};
use na_benchmarks::{Benchmark, Workload};
use na_circuit::parse_qasm;
use na_core::{compile, verify, CompiledCircuit, CompilerConfig};
use na_engine::{
    derive_seed, CompileCache, Engine, ExperimentSpec, FailureSummary, JsonlSink, LossSpec,
    Outcome, RunRecord, Task,
};
use na_loss::{
    mean_loss_tolerance, render_timeline, run_campaign, CampaignConfig, ShotTarget, Strategy,
};
use na_noise::{success_probability, NoiseParams};
use std::error::Error;
use std::time::Duration;

/// What a successfully-dispatched subcommand reports back to `main`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdStatus {
    /// Every row/point succeeded (exit code 0).
    Ok,
    /// The command ran to completion but some result rows carry typed
    /// failures (exit code 2; the rows and the stderr summary tell the
    /// story).
    PartialFailure,
}

type CmdResult = Result<CmdStatus, Box<dyn Error>>;

/// Parses a benchmark through the shared name table
/// (`Benchmark::from_str` in `na-benchmarks`).
fn parse_benchmark(name: &str) -> Result<Benchmark, ArgError> {
    name.parse()
        .map_err(|e: na_benchmarks::ParseBenchmarkError| ArgError(e.to_string()))
}

/// Parses a strategy through the shared name table
/// (`Strategy::from_str` in `na-loss`).
fn parse_strategy(name: &str) -> Result<Strategy, ArgError> {
    name.parse()
        .map_err(|e: na_loss::ParseStrategyError| ArgError(e.to_string()))
}

fn parse_grid(spec: &str) -> Result<Grid, ArgError> {
    let (w, h) = spec
        .split_once('x')
        .ok_or_else(|| ArgError(format!("grid spec {spec:?} must look like 10x10")))?;
    let w: u32 = w
        .parse()
        .map_err(|_| ArgError(format!("bad grid width {w:?}")))?;
    let h: u32 = h
        .parse()
        .map_err(|_| ArgError(format!("bad grid height {h:?}")))?;
    if w == 0 || h == 0 {
        return Err(ArgError("grid dimensions must be positive".into()));
    }
    Ok(Grid::new(w, h))
}

/// Loads and parses the `--qasm` file into a custom [`Workload`]
/// labeled by the file stem.
fn load_qasm_workload(path: &str) -> Result<Workload, ArgError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read QASM file {path:?}: {e}")))?;
    let circuit = parse_qasm(&src).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let label = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string();
    Ok(Workload::custom(label, circuit))
}

struct Common {
    workload: Workload,
    size: u32,
    grid: Grid,
    config: CompilerConfig,
    seed: u64,
}

impl Common {
    /// The circuit at this command's `(size, seed)` point.
    fn circuit(&self) -> std::sync::Arc<na_circuit::Circuit> {
        self.workload.circuit(self.size, self.seed)
    }

    /// Qubits the workload actually uses.
    fn actual_size(&self) -> u32 {
        self.workload.actual_size(self.size)
    }
}

fn common(args: &Args) -> Result<Common, ArgError> {
    let workload = match args.get("qasm") {
        Some(path) => {
            if args.get("benchmark").is_some() {
                return Err(ArgError(
                    "--qasm and --benchmark are mutually exclusive".into(),
                ));
            }
            load_qasm_workload(path)?
        }
        None => {
            // A valueless --qasm parses as a boolean flag; refuse it
            // rather than silently compiling the default benchmark
            // (it is also the old spelling of compile's export flag).
            if args.flag("qasm") {
                return Err(ArgError(
                    "--qasm expects a file path (to print a compiled schedule \
                     as QASM, use --emit-qasm)"
                        .into(),
                ));
            }
            Workload::from(parse_benchmark(args.get_or("benchmark", "bv"))?)
        }
    };
    let size = args.parse_or("size", 30u32)?;
    let grid = parse_grid(args.get_or("grid", "10x10"))?;
    let mid: f64 = args.parse_or("mid", 3.0)?;
    if mid < 1.0 {
        return Err(ArgError("--mid must be at least 1".into()));
    }
    let mut config = CompilerConfig::new(mid);
    if args.flag("no-native") {
        config = config.with_native_multiqubit(false);
    }
    if args.flag("no-zones") {
        config = config.with_restriction(RestrictionPolicy::None);
    }
    let seed = args.parse_or("seed", 0u64)?;
    Ok(Common {
        workload,
        size,
        grid,
        config,
        seed,
    })
}

/// The engine for a sweep-shaped command: `--workers N` (default all
/// cores) plus the cooperative `--job-timeout` budget.
fn engine(args: &Args) -> Result<Engine, ArgError> {
    let mut engine = match args.get("workers") {
        None => Engine::new(),
        Some(_) => Engine::with_workers(args.parse_or("workers", 0usize)?),
    };
    if let Some(timeout) = job_timeout(args)? {
        engine = engine.with_job_timeout(timeout);
    }
    Ok(engine)
}

/// Parses `--job-timeout <secs>` (fractional seconds allowed; `0`
/// expires immediately, which the chaos smoke uses).
fn job_timeout(args: &Args) -> Result<Option<Duration>, ArgError> {
    match args.get("job-timeout") {
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value {raw:?} for --job-timeout")))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(ArgError(
                    "--job-timeout must be a non-negative number of seconds".into(),
                ));
            }
            Ok(Some(Duration::from_secs_f64(secs)))
        }
        None if args.flag("job-timeout") => {
            Err(ArgError("--job-timeout expects a number of seconds".into()))
        }
        None => Ok(None),
    }
}

/// The `--jsonl` mode: `None` = human-readable output, `Some(None)` =
/// JSONL to stdout, `Some(Some(path))` = JSONL to a file.
fn jsonl_target(args: &Args) -> Option<Option<String>> {
    match args.get("jsonl") {
        Some(path) => Some(Some(path.to_string())),
        None if args.flag("jsonl") => Some(None),
        None => None,
    }
}

/// Checks up front that `path` can be opened for writing — without
/// truncating anything already there — so a long sweep never runs for
/// minutes only to fail at the final write.
pub fn validate_writable(path: &str, what: &str) -> Result<(), ArgError> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map(|_| ())
        .map_err(|e| ArgError(format!("cannot open {what} file {path:?} for writing: {e}")))
}

/// Streams records as JSONL to stdout or a file. A broken pipe is a
/// clean early stop (`natoms sweep --jsonl | head`); any other sink
/// error propagates as a real failure.
fn emit_jsonl(records: &[RunRecord], target: Option<&str>) -> Result<(), Box<dyn Error>> {
    let result = match target {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| ArgError(format!("cannot write JSONL file {path:?}: {e}")))?;
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            na_engine::write_records(records, &mut sink)
        }
        None => na_engine::write_records(records, &mut JsonlSink::stdout()),
    };
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.is_broken_pipe() => Ok(()),
        Err(e) => Err(Box::new(e) as Box<dyn Error>),
    }
}

/// The uniform end-of-command failure accounting: silent when every
/// row succeeded, otherwise a stderr summary (`3/120 rows failed: 2
/// unroutable, 1 panicked`) and [`CmdStatus::PartialFailure`] for the
/// exit code.
fn finish_rows(records: &[RunRecord]) -> CmdStatus {
    let summary = FailureSummary::of(records);
    if summary.any_failed() {
        eprintln!("{summary}");
        CmdStatus::PartialFailure
    } else {
        CmdStatus::Ok
    }
}

/// Compiles the command's circuit through a [`CompileCache`] — the
/// same code path the engine commands use, so one-shot commands report
/// real cache/stage telemetry — and verifies the schedule.
fn compile_common(c: &Common) -> Result<std::sync::Arc<CompiledCircuit>, Box<dyn Error>> {
    let program = c.circuit();
    let compiled = CompileCache::new().get_or_compile(&program, &c.grid, &c.config)?;
    verify(&compiled, &c.grid)?;
    Ok(compiled)
}

/// Uniform cache-efficacy report for every compiling subcommand: when
/// telemetry is enabled (`--metrics`), one stderr line from the merged
/// registry — hits/misses/occupancy aggregated across all workers and
/// caches the command touched. Stderr so it never disturbs table or
/// JSONL stdout.
fn report_cache_stats() {
    if !na_telemetry::is_enabled() {
        return;
    }
    let snap = na_telemetry::snapshot();
    eprintln!(
        "compile cache: {} hits, {} misses ({} entries)",
        snap.counter("compile_cache_hits"),
        snap.counter("compile_cache_misses"),
        snap.gauge("compile_cache_entries")
    );
    eprintln!(
        "artifact store: {} placement hits, {} lowered hits",
        snap.counter("artifact_hits"),
        snap.counter("artifact_lowered_hits")
    );
}

/// `natoms compile`
pub fn compile_cmd(args: &Args) -> CmdResult {
    let c = common(args)?;
    // `--passes` compiles through the self-checking pipeline instead
    // of the cache: every pass (including `verify`) is a real timed
    // measurement, and the per-pass table is printed after the
    // metrics. The compiled schedule is bit-identical either way.
    let (compiled, pass_report) = if args.flag("passes") {
        let program = c.circuit();
        let (compiled, report) = na_core::compile_with_report(&program, &c.grid, &c.config)?;
        (std::sync::Arc::new(compiled), Some(report))
    } else {
        (compile_common(&c)?, None)
    };
    let m = compiled.metrics();
    println!(
        "{} size {} on {}x{} at MID {}",
        c.workload,
        c.actual_size(),
        c.grid.width(),
        c.grid.height(),
        c.config.mid
    );
    println!("  {m}");
    println!("  timesteps: {}", compiled.num_timesteps());
    if let Some(report) = &pass_report {
        print!("{}", report.render());
    }
    if args.flag("emit-qasm") {
        let qasm = na_circuit::qasm::to_qasm(compiled.circuit())?;
        println!("\n{qasm}");
    }
    report_cache_stats();
    Ok(CmdStatus::Ok)
}

/// `natoms sweep` — the MID sweep, fanned across cores by the engine.
pub fn sweep_cmd(args: &Args) -> CmdResult {
    let c = common(args)?;
    let default_mids = na_engine::paper::paper_mids()
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mids: Vec<f64> = args
        .get_or("mids", &default_mids)
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| ArgError(format!("bad MID {s:?}")))
        })
        .collect::<Result<_, _>>()?;

    let mut spec = ExperimentSpec::new("cli-sweep", c.grid.clone());
    for &mid in &mids {
        let mut cfg = c.config;
        cfg.mid = mid;
        if mid * mid < 2.0 {
            cfg = cfg.with_native_multiqubit(false);
        }
        spec.push(c.workload.clone(), c.size, c.seed, cfg, Task::Compile);
    }
    let jsonl = jsonl_target(args);
    if let Some(Some(path)) = &jsonl {
        validate_writable(path, "JSONL")?;
    }
    let records = engine(args)?.run(&spec);
    report_cache_stats();

    if let Some(target) = &jsonl {
        emit_jsonl(&records, target.as_deref())?;
        return Ok(finish_rows(&records));
    }

    println!("{:>6} {:>8} {:>7} {:>7}", "MID", "gates", "swaps", "depth");
    for r in &records {
        match &r.outcome {
            Outcome::Compiled { metrics: m, .. } => {
                println!(
                    "{:>6} {:>8} {:>7} {:>7}",
                    r.mid,
                    m.total_gates(),
                    m.swaps,
                    m.depth
                );
            }
            Outcome::Failed { error, .. } => {
                // A failed point is a row, not an abort: render
                // placeholders and keep sweeping.
                println!("{:>6} {:>8} {:>7} {:>7}  {error}", r.mid, "-", "-", "-");
            }
            other => unreachable!("compile task returned {other:?}"),
        }
    }
    Ok(finish_rows(&records))
}

/// `natoms success`
pub fn success_cmd(args: &Args) -> CmdResult {
    let c = common(args)?;
    let error: f64 = args.parse_or("error", 1e-3)?;
    // One cache for both architecture points of the comparison.
    let cache = CompileCache::new();
    let program = c.circuit();
    let compiled = cache.get_or_compile(&program, &c.grid, &c.config)?;
    verify(&compiled, &c.grid)?;
    let na = success_probability(&compiled, &NoiseParams::neutral_atom(error));
    println!(
        "NA  MID {}: success {:.4} (gates {:.4}, coherence {:.6}, {:.1} us/shot)",
        c.config.mid,
        na.probability(),
        na.gate_success,
        na.coherence,
        na.duration * 1e6
    );

    let sc_cfg = CompilerConfig::new(1.0)
        .with_native_multiqubit(false)
        .with_restriction(RestrictionPolicy::None);
    let sc_compiled = cache.get_or_compile(&program, &c.grid, &sc_cfg)?;
    let sc = success_probability(&sc_compiled, &NoiseParams::superconducting(error));
    println!(
        "SC  MID 1: success {:.4} (gates {:.4}, coherence {:.6}, {:.1} us/shot)",
        sc.probability(),
        sc.gate_success,
        sc.coherence,
        sc.duration * 1e6
    );
    report_cache_stats();
    Ok(CmdStatus::Ok)
}

/// `natoms tolerance`
pub fn tolerance_cmd(args: &Args) -> CmdResult {
    let c = common(args)?;
    let strategy = parse_strategy(args.get_or("strategy", "c-small-reroute"))?;
    let trials: u32 = args.parse_or("trials", 10)?;
    if !strategy.supports_mid(c.config.mid) {
        return Err(Box::new(ArgError(format!(
            "{strategy} needs a hardware MID of at least 3"
        ))));
    }
    let program = c.circuit();
    let (mean, std) =
        mean_loss_tolerance(&program, &c.grid, c.config.mid, strategy, trials, c.seed)?;
    println!(
        "{strategy} on {} ({} qubits, MID {}): sustains {:.1}% +/- {:.1}% of the device",
        c.workload,
        c.actual_size(),
        c.config.mid,
        mean * 100.0,
        std * 100.0
    );
    report_cache_stats();
    Ok(CmdStatus::Ok)
}

/// `natoms campaign` — one or more Monte-Carlo campaigns through the
/// engine. `--campaigns N` runs N independent replicas (seeds derived
/// from `--seed`) in parallel and reports each plus the aggregate.
/// `--shards K` fans each replica's shot budget out as K deterministic
/// shards across the worker pool; `--streaming` drops the per-interval
/// vector (and the timeline) for constant-memory campaigns at any shot
/// count, reporting streak statistics from the running summaries
/// instead.
pub fn campaign_cmd(args: &Args) -> CmdResult {
    let c = common(args)?;
    let strategy = parse_strategy(args.get_or("strategy", "c-small-reroute"))?;
    let shots: u64 = args.parse_or("shots", 500u64)?;
    let error: f64 = args.parse_or("error", 0.035)?;
    let factor: f64 = args.parse_or("loss-factor", 1.0)?;
    let campaigns: u32 = args.parse_or("campaigns", 1u32)?;
    if campaigns == 0 {
        return Err(Box::new(ArgError("--campaigns must be at least 1".into())));
    }
    let shards: u32 = args.parse_or("shards", 1u32)?;
    if shards == 0 {
        return Err(Box::new(ArgError("--shards must be at least 1".into())));
    }
    let streaming = args.flag("streaming");
    if streaming && args.flag("timeline") {
        // The timeline grows with the shot count — exactly the
        // unbounded memory --streaming exists to rule out.
        return Err(Box::new(ArgError(
            "--timeline records every shot and cannot be combined with --streaming; \
             drop one of the two flags"
                .into(),
        )));
    }

    let mut spec = ExperimentSpec::new("cli-campaign", c.grid.clone());
    for i in 0..campaigns {
        let replica_seed = if i == 0 {
            c.seed
        } else {
            derive_seed(c.seed, u64::from(i))
        };
        let mut cfg = CampaignConfig::new(c.config.mid, strategy)
            .with_target(ShotTarget::Attempts(shots))
            .with_two_qubit_error(error)
            .with_seed(replica_seed);
        if args.flag("timeline") {
            cfg = cfg.with_timeline();
        }
        if streaming {
            cfg = cfg.with_streaming();
        }
        // An explicit --shots request overrides the library's runaway
        // safety cap (100k), which would otherwise silently truncate
        // the million-shot campaigns --streaming exists to make cheap.
        cfg.max_attempts = cfg.max_attempts.max(shots);
        let loss = LossSpec::new(replica_seed).with_improvement_factor(factor);
        // One shard is the serial campaign itself — same task, same
        // row, no fan-out bookkeeping.
        let task = if shards == 1 {
            Task::Campaign { config: cfg, loss }
        } else {
            Task::ShardedCampaign {
                config: cfg,
                loss,
                shards,
            }
        };
        spec.push(c.workload.clone(), c.size, c.seed, c.config, task);
    }
    let jsonl = jsonl_target(args);
    if let Some(Some(path)) = &jsonl {
        validate_writable(path, "JSONL")?;
    }
    let records = engine(args)?.run(&spec);
    report_cache_stats();

    if let Some(target) = &jsonl {
        emit_jsonl(&records, target.as_deref())?;
        return Ok(finish_rows(&records));
    }

    let mut mean_shots = Vec::new();
    for r in &records {
        let result = match &r.outcome {
            Outcome::Campaign(result) => result,
            Outcome::Failed { error, .. } => {
                // One replica's failure is its own row; the rest of
                // the replicas still report.
                if campaigns > 1 {
                    print!("[replica {}] ", r.id);
                }
                println!("failed: {error}");
                continue;
            }
            other => unreachable!("campaign task returned {other:?}"),
        };
        if campaigns > 1 {
            print!("[replica {}] ", r.id);
        }
        println!(
            "{} shots: {} successful, {} lost to atom loss, {} to noise",
            result.shots_attempted,
            result.shots_successful,
            result.discarded_by_loss,
            result.failed_by_noise
        );
        let l = &result.ledger;
        println!(
            "overhead {:.2} s (reload {:.2} s x{}, fluorescence {:.2} s, remap/fixup/recompile {:.4} s)",
            l.overhead_time(),
            l.reload_time,
            l.reloads,
            l.fluorescence_time,
            l.remap_time + l.fixup_time + l.recompile_time
        );
        println!(
            "mean successful shots per reload interval: {:.1}",
            result.mean_shots_before_reload()
        );
        mean_shots.push(result.mean_shots_before_reload());
        if args.flag("timeline") {
            println!("\n{}", render_timeline(&result.timeline));
        }
    }
    if campaigns > 1 && !mean_shots.is_empty() {
        let mean = mean_shots.iter().sum::<f64>() / mean_shots.len() as f64;
        println!(
            "aggregate over {} campaigns: {mean:.1} successful shots per reload interval",
            mean_shots.len()
        );
    }
    Ok(finish_rows(&records))
}

/// One timed workload of `natoms bench`.
#[derive(Debug, serde::Serialize)]
struct BenchWorkload {
    /// Workload name (`fig07_compile`, `fig08_compile`, `placement`,
    /// `placement_reference`, `loss_executor`).
    name: String,
    /// Timed repetitions of the whole workload.
    passes: u32,
    /// Work units (compiles or shots) in one pass.
    units_per_pass: u32,
    /// Total wall-clock seconds over all passes.
    total_secs: f64,
    /// Mean seconds per pass.
    secs_per_pass: f64,
    /// Work units per second.
    units_per_sec: f64,
}

/// Provenance of one `natoms bench` run.
#[derive(Debug, serde::Serialize)]
struct BenchMeta {
    /// `git rev-parse --short=12 HEAD` of the working tree, or
    /// `"unknown"` outside a repository.
    git_rev: String,
    /// ISO-8601 UTC wall-clock time of the run.
    timestamp: String,
    /// Available hardware parallelism on the host.
    workers: usize,
}

impl BenchMeta {
    fn collect() -> Self {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|rev| rev.trim().to_string())
            .filter(|rev| !rev.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        BenchMeta {
            git_rev,
            timestamp: na_telemetry::iso8601_now(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// The machine-readable report of `natoms bench --json`.
///
/// Schema history: v2 added `meta` (run provenance) and `metrics` (the
/// per-stage telemetry snapshot of the benched workloads); every v1
/// per-workload field is retained unchanged so units/s trajectories
/// stay comparable across the schema bump. `pass_report` (the
/// per-pass breakdown of one representative compile through the
/// self-checking pipeline) is additive under v2.
#[derive(Debug, serde::Serialize)]
struct BenchReport {
    /// Report format tag.
    schema: String,
    /// `"quick"` (CI smoke) or `"full"`.
    mode: String,
    /// Device the workloads compile onto.
    grid: String,
    /// Run provenance.
    meta: BenchMeta,
    /// The timed workloads.
    workloads: Vec<BenchWorkload>,
    /// Merged telemetry of the benched workloads: per-stage latency
    /// percentiles plus compile/loss counters.
    metrics: na_telemetry::MetricsSnapshot,
    /// Per-pass wall time and artifact stats of one representative
    /// compile (BV at the fig07 size on the bench grid) through the
    /// self-checking pass pipeline.
    pass_report: na_core::PassReport,
}

/// `natoms bench` — wall-clock timings of the paper-grid compile and
/// loss-executor workloads (the numbers tracked in
/// `BENCH_compile.json`). `--json` emits the machine-readable report;
/// `--quick` runs a reduced smoke-size variant for CI.
pub fn bench_cmd(args: &Args) -> CmdResult {
    let quick = args.flag("quick");
    let timeout = job_timeout(args)?;
    // bench always collects its own telemetry (that's the per-stage
    // breakdown the report embeds), regardless of --metrics.
    let telemetry_was_enabled = na_telemetry::is_enabled();
    na_telemetry::set_enabled(true);
    na_telemetry::reset();
    let outcome = bench_workloads(quick, timeout);
    let metrics = na_telemetry::snapshot();
    na_telemetry::set_enabled(telemetry_was_enabled);
    let (grid, workloads, pass_report) = outcome?;

    let report = BenchReport {
        schema: "natoms-bench-v2".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        grid: format!("{}x{}", grid.width(), grid.height()),
        meta: BenchMeta::collect(),
        workloads,
        metrics,
        pass_report,
    };
    if args.flag("json") {
        println!("{}", serde_json::to_string(&report)?);
    } else {
        println!(
            "== natoms bench ({}) on {} == [{} @ {}, {} cores]",
            report.mode,
            report.grid,
            report.meta.git_rev,
            report.meta.timestamp,
            report.meta.workers
        );
        for w in &report.workloads {
            println!(
                "{:<16} {:>3} pass(es) x {:>4} units: {:.4} s/pass ({:.0} units/s)",
                w.name, w.passes, w.units_per_pass, w.secs_per_pass, w.units_per_sec
            );
        }
        print!("{}", report.metrics.render());
        print!("{}", report.pass_report.render());
    }
    // The perf gate: compare this run's throughput against a committed
    // baseline; a regression beyond tolerance exits nonzero (code 2).
    if let Some(baseline) = args.get("check") {
        let tolerance: f64 = args.parse_or("tolerance", 25.0)?;
        return check_bench_regression(&report.workloads, baseline, tolerance);
    }
    Ok(CmdStatus::Ok)
}

/// Extracts `(name, units_per_sec)` baseline rows from a comparison
/// file: a `natoms bench --json` report (`workloads`), or the
/// committed `BENCH_compile.json` shape (preferring the most recent
/// `current.results` measurement, falling back to
/// `baseline.results`).
fn baseline_rows(value: &serde_json::Value) -> Option<Vec<(String, f64)>> {
    let results = |key: &str| {
        value
            .get(key)
            .and_then(|section| section.get("results"))
            .and_then(|rows| rows.as_array())
    };
    let rows = value
        .get("workloads")
        .and_then(|rows| rows.as_array())
        .or_else(|| results("current"))
        .or_else(|| results("baseline"))?;
    let rows: Vec<(String, f64)> = rows
        .iter()
        .filter_map(|row| {
            Some((
                row.get("name")?.as_str()?.to_string(),
                row.get("units_per_sec")?.as_f64()?,
            ))
        })
        .collect();
    (!rows.is_empty()).then_some(rows)
}

/// `natoms bench --check <baseline.json> [--tolerance PCT]`: every
/// workload present in both runs must stay above
/// `baseline * (1 - PCT/100)` units/s (default tolerance 25%).
///
/// # Errors
///
/// An unreadable or shape-less baseline file, or no common workloads.
/// A throughput regression is *not* an `Err` — it reports per-workload
/// verdicts on stderr and returns [`CmdStatus::PartialFailure`]
/// (exit 2), matching the engine's typed-failure exit semantics.
fn check_bench_regression(fresh: &[BenchWorkload], path: &str, tolerance_pct: f64) -> CmdResult {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read bench baseline {path:?}: {e}")))?;
    let value: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| ArgError(format!("{path}: not a bench baseline: {e}")))?;
    let baseline = baseline_rows(&value).ok_or_else(|| {
        ArgError(format!(
            "{path}: no workload rows (expected a bench report or BENCH_compile.json)"
        ))
    })?;
    let mut compared = 0u32;
    let mut regressions = 0u32;
    eprintln!("bench check vs {path} (tolerance -{tolerance_pct}%):");
    for w in fresh {
        let Some((_, base_ups)) = baseline.iter().find(|(name, _)| name == &w.name) else {
            continue;
        };
        compared += 1;
        let floor = base_ups * (1.0 - tolerance_pct / 100.0);
        let delta_pct = (w.units_per_sec / base_ups - 1.0) * 100.0;
        let verdict = if w.units_per_sec < floor {
            regressions += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        eprintln!(
            "  {:<24} {:>10.1} units/s vs {:>10.1} baseline ({:>+7.1}%) {}",
            w.name, w.units_per_sec, base_ups, delta_pct, verdict
        );
    }
    if compared == 0 {
        return Err(Box::new(ArgError(format!(
            "{path}: no workloads in common with this bench run"
        ))));
    }
    if regressions > 0 {
        eprintln!(
            "bench check: {regressions}/{compared} workload(s) more than {tolerance_pct}% below baseline"
        );
        Ok(CmdStatus::PartialFailure)
    } else {
        eprintln!("bench check: {compared} workload(s) within tolerance");
        Ok(CmdStatus::Ok)
    }
}

/// The timed workloads of `natoms bench`. Each pass of each workload
/// runs under the `--job-timeout` budget (unbounded without it); a
/// workload that runs out stops at a compiler/campaign stage boundary
/// and surfaces as a typed error naming the workload.
#[allow(clippy::type_complexity)]
fn bench_workloads(
    quick: bool,
    timeout: Option<Duration>,
) -> Result<(Grid, Vec<BenchWorkload>, na_core::PassReport), Box<dyn Error>> {
    use std::time::Instant;
    let grid = Grid::new(10, 10);
    let na_cfg = CompilerConfig::new(3.0);
    let sc_cfg = CompilerConfig::new(1.0)
        .with_native_multiqubit(false)
        .with_restriction(RestrictionPolicy::None);
    let mut workloads = Vec::new();

    let mut timed = |name: &str,
                     passes: u32,
                     units_per_pass: u32,
                     work: &mut dyn FnMut() -> Result<(), Box<dyn Error>>|
     -> Result<(), Box<dyn Error>> {
        let t0 = Instant::now();
        for _ in 0..passes {
            let _budget = na_faults::push_deadline(match timeout {
                Some(d) => na_faults::Deadline::after(d),
                None => na_faults::Deadline::UNBOUNDED,
            });
            work().map_err(|e| ArgError(format!("bench workload {name}: {e}")))?;
        }
        let total_secs = t0.elapsed().as_secs_f64();
        let secs_per_pass = total_secs / f64::from(passes);
        workloads.push(BenchWorkload {
            name: name.to_string(),
            passes,
            units_per_pass,
            total_secs,
            secs_per_pass,
            units_per_sec: f64::from(passes * units_per_pass) / total_secs,
        });
        Ok(())
    };

    // Fig. 7 workload: one compile per (benchmark, architecture) at
    // the paper's 50-qubit program size.
    let fig07_size = if quick { 16 } else { 50 };
    let fig07_passes = if quick { 1 } else { 3 };
    timed(
        "fig07_compile",
        fig07_passes,
        (Benchmark::ALL.len() * 2) as u32,
        &mut || {
            for b in Benchmark::ALL {
                let c = b.generate(fig07_size, 0);
                compile(&c, &grid, &na_cfg)?;
                compile(&c, &grid, &sc_cfg)?;
            }
            Ok(())
        },
    )?;

    // Fig. 8 workload: the size ladder, both architectures.
    let fig08_sizes: Vec<u32> = if quick {
        vec![10, 20]
    } else {
        (5..=100).step_by(5).collect()
    };
    timed(
        "fig08_compile",
        1,
        (Benchmark::ALL.len() * fig08_sizes.len() * 2) as u32,
        &mut || {
            for b in Benchmark::ALL {
                for &size in &fig08_sizes {
                    let c = b.generate(size, 0);
                    compile(&c, &grid, &na_cfg)?;
                    compile(&c, &grid, &sc_cfg)?;
                }
            }
            Ok(())
        },
    )?;

    // Placement workload: the initial-mapping slice of the compile
    // pipeline, isolated. Circuits are pre-lowered and their lookahead
    // weights pre-built outside the timed loop, so the numbers measure
    // placement alone — the fast path (`placement`) against the seed
    // O(n² · sites) placer kept as the in-tree oracle
    // (`placement_reference`). Full mode uses the largest ladder
    // programs (size 100) on the paper grid.
    let placement_size = if quick { 16 } else { 100 };
    let placement_passes = if quick { 1 } else { 10 };
    let layouts: Vec<(na_circuit::Circuit, na_core::InteractionWeights)> = Benchmark::ALL
        .iter()
        .flat_map(|b| {
            let c = b.generate(placement_size, 0);
            [&na_cfg, &sc_cfg].map(|cfg| {
                let lowered = na_core::lower_for(&c, cfg);
                let weights = na_core::circuit_weights(&lowered, cfg.lookahead_depth);
                (lowered, weights)
            })
        })
        .collect();
    let mut scratch = na_core::PlacementScratch::new();
    // Untimed warmup so neither placement path pays the one-off
    // cold-cache/allocation cost inside its timed loop.
    for (c, w) in &layouts {
        na_core::initial_placement_with(c, &grid, w, &mut scratch)?;
        na_core::initial_placement_reference(c, &grid, w)?;
    }
    timed(
        "placement",
        placement_passes,
        layouts.len() as u32,
        &mut || {
            for (c, w) in &layouts {
                na_core::initial_placement_with(c, &grid, w, &mut scratch)?;
            }
            Ok(())
        },
    )?;
    timed(
        "placement_reference",
        placement_passes,
        layouts.len() as u32,
        &mut || {
            for (c, w) in &layouts {
                na_core::initial_placement_reference(c, &grid, w)?;
            }
            Ok(())
        },
    )?;

    // Loss-executor workload: a Monte-Carlo campaign under atom loss
    // (compile + per-shot loss draws, remaps, and reroute fixups).
    let shots = if quick { 25 } else { 200 };
    timed("loss_executor", 1, shots, &mut || {
        let program = Benchmark::Bv.generate(30, 0);
        let cfg = CampaignConfig::new(3.0, Strategy::CompileSmallReroute)
            .with_target(ShotTarget::Attempts(u64::from(shots)))
            .with_seed(1);
        run_campaign(&program, &grid, na_loss::LossModel::new(1), &cfg)?;
        Ok(())
    })?;

    // Heavy loss-executor workload: destructive (50% measurement loss)
    // readout on a larger program, so nearly every shot draws
    // interfering losses and the per-shot remap + reroute-fixup
    // costing dominates instead of the RNG draws.
    let heavy_shots = if quick { 25 } else { 400 };
    let heavy_size = if quick { 16 } else { 40 };
    timed("loss_executor_heavy", 1, heavy_shots, &mut || {
        let program = Benchmark::Cuccaro.generate(heavy_size, 0);
        let cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
            .with_target(ShotTarget::Attempts(u64::from(heavy_shots)))
            .with_seed(1);
        run_campaign(
            &program,
            &grid,
            na_loss::LossModel::destructive_readout(1),
            &cfg,
        )?;
        Ok(())
    })?;

    // Sharded-campaign workload: the heavy campaign config through the
    // engine pool at 1, 2, and 8 shards, in streaming mode (the
    // constant-memory path sharding exists to scale). A warmup run
    // fills the shared compile cache first, so every row times the
    // shot loops and the merge, not the one compile all shard counts
    // share. On a multi-core host the 8-shard row's units/s against
    // the 1-shard row shows the fan-out speedup; on a single-core
    // host the rows document the (small) sharding overhead instead.
    let fan_shots: u32 = if quick { 25 } else { 400 };
    let fan_size = if quick { 16 } else { 40 };
    let fan_engine = Engine::new();
    let sharded_spec = |shards: u32| {
        let mut spec = ExperimentSpec::new("bench-sharded", grid.clone());
        let cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
            .with_target(ShotTarget::Attempts(u64::from(fan_shots)))
            .with_streaming()
            .with_seed(1);
        let task = if shards == 1 {
            Task::Campaign {
                config: cfg,
                loss: LossSpec::new(1),
            }
        } else {
            Task::ShardedCampaign {
                config: cfg,
                loss: LossSpec::new(1),
                shards,
            }
        };
        spec.push(
            Benchmark::Cuccaro,
            fan_size,
            0,
            CompilerConfig::new(4.0),
            task,
        );
        spec
    };
    let run_sharded = |engine: &Engine, shards: u32| -> Result<(), Box<dyn Error>> {
        for r in engine.run(&sharded_spec(shards)) {
            if let Outcome::Failed { error, .. } = &r.outcome {
                return Err(ArgError(format!("campaign_sharded_{shards}: {error}")).into());
            }
        }
        Ok(())
    };
    run_sharded(&fan_engine, 1)?; // warmup: fill the compile cache
    for shards in [1u32, 2, 8] {
        timed(
            &format!("campaign_sharded_{shards}"),
            1,
            fan_shots,
            &mut || run_sharded(&fan_engine, shards),
        )?;
    }

    // One representative compile through the self-checking pipeline:
    // the per-pass breakdown the report embeds (untimed — it is a
    // breakdown of where compile time goes, not a benchmark row).
    let (_, pass_report) =
        na_core::compile_with_report(&Benchmark::Bv.generate(fig07_size, 0), &grid, &na_cfg)?;

    Ok((grid, workloads, pass_report))
}

/// `natoms reload-time`
pub fn reload_time_cmd(args: &Args) -> CmdResult {
    let width: u32 = args.parse_or("width", 10)?;
    let height: u32 = args.parse_or("height", 10)?;
    let margin: u32 = args.parse_or("margin", 3)?;
    let trials: u32 = args.parse_or("trials", 10)?;
    let seed: u64 = args.parse_or("seed", 0u64)?;
    let mut sim = AssemblySimulator::with_defaults(seed);
    let mean = sim.mean_reload_time(width, height, margin, trials);
    println!(
        "defect-free {width}x{height} assembly (reservoir margin {margin}): {mean:.3} s mean over {trials} trials"
    );
    println!("(the paper's 0.3 s reload constant, derived from loading physics)");
    Ok(CmdStatus::Ok)
}

/// Serializes the merged telemetry snapshot of this run to `path`
/// (the tail end of the global `--metrics <file>` flag).
pub fn write_metrics_snapshot(path: &str) -> Result<(), Box<dyn Error>> {
    let snapshot = na_telemetry::snapshot();
    let json = serde_json::to_string(&snapshot)?;
    std::fs::write(path, json)
        .map_err(|e| ArgError(format!("cannot write metrics file {path:?}: {e}")))?;
    Ok(())
}

/// Drains the trace registry and writes Chrome trace-event JSON to
/// `path` (the tail end of the global `--trace <file>` flag).
pub fn write_trace(path: &str) -> Result<(), Box<dyn Error>> {
    let mut buf = Vec::new();
    let events = na_telemetry::trace::write_chrome_trace(&mut buf)?;
    std::fs::write(path, &buf)
        .map_err(|e| ArgError(format!("cannot write trace file {path:?}: {e}")))?;
    eprintln!("trace: wrote {events} events to {path}");
    Ok(())
}

/// The tail end of every `natoms` invocation: writes the `--metrics`
/// snapshot and `--trace` export once the subcommand has run.
///
/// Both files are written for [`CmdStatus::PartialFailure`] (exit 2)
/// too, not just full success — the failure counters
/// (`jobs_failed`, `deadlines_exceeded`) and the panic/deadline trace
/// instants are exactly what you inspect after a partial failure.
/// `tests` pins this regression.
pub fn finalize_outputs(
    result: Result<CmdStatus, Box<dyn Error>>,
    metrics_path: Option<&str>,
    trace_path: Option<&str>,
) -> Result<CmdStatus, Box<dyn Error>> {
    result.and_then(|status| {
        if let Some(path) = metrics_path {
            write_metrics_snapshot(path)?;
        }
        if let Some(path) = trace_path {
            write_trace(path)?;
        }
        Ok(status)
    })
}

/// `natoms stats` — pretty-prints a `--metrics` snapshot file, with
/// optional assertions for CI smoke checks:
///
/// * `--require-stages a,b,c` fails unless every named stage recorded
///   at least one sample with non-zero total time;
/// * `--require-cache` fails unless the compile cache saw at least one
///   lookup.
pub fn stats_cmd(args: &Args) -> CmdResult {
    let path = args
        .get("file")
        .ok_or_else(|| ArgError("stats needs --file <metrics.json>".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read metrics file {path:?}: {e}")))?;
    let snapshot: na_telemetry::MetricsSnapshot = serde_json::from_str(&text)
        .map_err(|e| ArgError(format!("{path}: not a metrics snapshot: {e}")))?;
    if snapshot.schema != na_telemetry::SNAPSHOT_SCHEMA {
        return Err(Box::new(ArgError(format!(
            "{path}: unknown snapshot schema {:?} (expected {:?})",
            snapshot.schema,
            na_telemetry::SNAPSHOT_SCHEMA
        ))));
    }
    print!("{}", snapshot.render());

    if let Some(required) = args.get("require-stages") {
        for name in required.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let stage = snapshot.stage(name).ok_or_else(|| {
                ArgError(format!("required stage {name:?} missing from snapshot"))
            })?;
            if stage.count == 0 || stage.total_ns == 0 {
                return Err(Box::new(ArgError(format!(
                    "required stage {name:?} recorded no time"
                ))));
            }
        }
    }
    if args.flag("require-cache") {
        let lookups =
            snapshot.counter("compile_cache_hits") + snapshot.counter("compile_cache_misses");
        if lookups == 0 {
            return Err(Box::new(ArgError(
                "snapshot has no compile-cache lookups".into(),
            )));
        }
    }
    Ok(CmdStatus::Ok)
}

/// One completed span reconstructed from a Chrome trace file.
#[derive(Debug, Clone)]
struct TraceSpan {
    name: String,
    /// Span id from `args.id` (0 when absent).
    id: u64,
    /// Parent span id from `args.parent` (0 = root).
    parent: u64,
    tid: u64,
    /// Duration in microseconds.
    dur_us: f64,
    /// `args.job`, when the span carries one.
    job: Option<u64>,
    /// `args.task`, when the span carries one.
    task: Option<String>,
}

/// Reconstructs spans (matched B/E pairs, LIFO per track) and instant
/// counts from parsed trace events. Returns
/// `(spans, instant counts by name, unmatched event count)`.
fn fold_trace_events(
    events: &[serde_json::Value],
) -> (
    Vec<TraceSpan>,
    std::collections::BTreeMap<String, u64>,
    usize,
) {
    let mut stacks: std::collections::HashMap<u64, Vec<(serde_json::Value, f64)>> =
        std::collections::HashMap::new();
    let mut spans = Vec::new();
    let mut instants: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut unmatched = 0usize;
    let name_of = |ev: &serde_json::Value| {
        ev.get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let arg =
        |ev: &serde_json::Value, key: &str| ev.get("args").and_then(|args| args.get(key)).cloned();
    for ev in events {
        let tid = ev.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);
        let ts = ev.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("B") => stacks.entry(tid).or_default().push((ev.clone(), ts)),
            Some("E") => match stacks.entry(tid).or_default().pop() {
                Some((begin, begin_ts)) => spans.push(TraceSpan {
                    name: name_of(&begin),
                    id: arg(&begin, "id").and_then(|v| v.as_u64()).unwrap_or(0),
                    parent: arg(&begin, "parent").and_then(|v| v.as_u64()).unwrap_or(0),
                    tid,
                    dur_us: (ts - begin_ts).max(0.0),
                    job: arg(&begin, "job").and_then(|v| v.as_u64()),
                    task: arg(&begin, "task").and_then(|v| v.as_str().map(str::to_string)),
                }),
                None => unmatched += 1,
            },
            Some("i") => {
                *instants.entry(name_of(ev)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    unmatched += stacks.values().map(Vec::len).sum::<usize>();
    (spans, instants, unmatched)
}

/// Walks the longest-child chain under `root`, rendering one critical
/// path line per level.
fn render_critical_path(
    root: usize,
    spans: &[TraceSpan],
    children: &std::collections::HashMap<u64, Vec<usize>>,
) -> String {
    let mut path = String::new();
    let mut at = root;
    loop {
        let slowest_child = children
            .get(&spans[at].id)
            .into_iter()
            .flatten()
            .copied()
            .max_by(|&a, &b| spans[a].dur_us.total_cmp(&spans[b].dur_us));
        match slowest_child {
            Some(child) => {
                path.push_str(&format!(
                    " -> {} {:.3} ms",
                    spans[child].name,
                    spans[child].dur_us / 1e3
                ));
                at = child;
            }
            None => break,
        }
    }
    path
}

/// `natoms trace <file>` — summarizes a Chrome trace-event file
/// written by the global `--trace` flag: structural validation
/// (matched begin/end pairs per track), per-job critical paths, the
/// top-k slowest spans (`--top N`, default 10), and cache-wait
/// totals.
pub fn trace_cmd(args: &Args) -> CmdResult {
    let path = args
        .positional()
        .or_else(|| args.get("file"))
        .ok_or_else(|| ArgError("trace needs a file: natoms trace <trace.json>".into()))?;
    let top: usize = args.parse_or("top", 10)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ArgError(format!("cannot read trace file {path:?}: {e}")))?;
    let events: Vec<serde_json::Value> = serde_json::from_str(&text)
        .map_err(|e| ArgError(format!("{path}: not a trace-event array: {e}")))?;
    let (spans, instants, unmatched) = fold_trace_events(&events);
    let tracks: std::collections::BTreeSet<u64> = events
        .iter()
        .filter_map(|ev| ev.get("tid").and_then(|t| t.as_u64()))
        .collect();
    println!(
        "{path}: {} events, {} spans, {} tracks, {} unmatched begin/end",
        events.len(),
        spans.len(),
        tracks.len(),
        unmatched
    );
    if !instants.is_empty() {
        let rendered: Vec<String> = instants
            .iter()
            .map(|(name, count)| format!("{name} x{count}"))
            .collect();
        println!("instants: {}", rendered.join(", "));
    }

    let waits: Vec<&TraceSpan> = spans.iter().filter(|s| s.name == "cache_wait").collect();
    if !waits.is_empty() {
        println!(
            "cache wait: {} wait(s), {:.3} ms total",
            waits.len(),
            waits.iter().map(|s| s.dur_us).sum::<f64>() / 1e3
        );
    }

    let mut slowest: Vec<usize> = (0..spans.len()).collect();
    slowest.sort_by(|&a, &b| spans[b].dur_us.total_cmp(&spans[a].dur_us));
    if !slowest.is_empty() {
        println!("top {} slowest spans:", top.min(slowest.len()));
        for (rank, &i) in slowest.iter().take(top).enumerate() {
            let s = &spans[i];
            let mut label = s.name.clone();
            if let Some(job) = s.job {
                label.push_str(&format!(" job={job}"));
            }
            if let Some(task) = &s.task {
                label.push_str(&format!(" task={task}"));
            }
            println!(
                "  {:>2}. {:<32} {:>10.3} ms  [tid {}]",
                rank + 1,
                label,
                s.dur_us / 1e3,
                s.tid
            );
        }
    }

    // Critical path per job: jobs are the root spans (`job` /
    // `campaign_job`); children link by the explicit span ids the
    // exporter put in `args`.
    let mut children: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 {
            children.entry(s.parent).or_default().push(i);
        }
    }
    let mut jobs: Vec<usize> = (0..spans.len())
        .filter(|&i| {
            (spans[i].name == "job" || spans[i].name == "campaign_job") && spans[i].id != 0
        })
        .collect();
    jobs.sort_by_key(|&i| spans[i].job.unwrap_or(u64::MAX));
    if !jobs.is_empty() {
        println!("per-job critical path:");
        for &i in &jobs {
            let s = &spans[i];
            println!(
                "  job {} ({}) {:.3} ms{}",
                s.job.map_or_else(|| "?".into(), |j| j.to_string()),
                s.task.as_deref().unwrap_or(if s.name == "campaign_job" {
                    "campaign_sharded"
                } else {
                    "?"
                }),
                s.dur_us / 1e3,
                render_critical_path(i, &spans, &children)
            );
        }
    }
    Ok(CmdStatus::Ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn benchmark_names_parse() {
        assert_eq!(parse_benchmark("qaoa").unwrap(), Benchmark::Qaoa);
        assert_eq!(parse_benchmark("QFT-Adder").unwrap(), Benchmark::QftAdder);
        assert!(parse_benchmark("ghz").is_err());
    }

    #[test]
    fn strategy_names_parse() {
        assert_eq!(parse_strategy("reroute").unwrap(), Strategy::MinorReroute);
        assert_eq!(
            parse_strategy("c-small-reroute").unwrap(),
            Strategy::CompileSmallReroute
        );
        assert!(parse_strategy("magic").is_err());
    }

    #[test]
    fn grid_spec_parses() {
        let g = parse_grid("8x12").unwrap();
        assert_eq!((g.width(), g.height()), (8, 12));
        assert!(parse_grid("8by12").is_err());
        assert!(parse_grid("0x5").is_err());
    }

    #[test]
    fn compile_command_runs() {
        let args = parse(&[
            "compile",
            "--benchmark",
            "qaoa",
            "--size",
            "12",
            "--mid",
            "2",
        ]);
        compile_cmd(&args).unwrap();
    }

    #[test]
    fn compile_command_reports_passes() {
        let args = parse(&[
            "compile",
            "--benchmark",
            "qaoa",
            "--size",
            "12",
            "--mid",
            "2",
            "--passes",
        ]);
        compile_cmd(&args).unwrap();
    }

    #[test]
    fn sweep_command_runs() {
        let args = parse(&[
            "sweep",
            "--benchmark",
            "bv",
            "--size",
            "12",
            "--mids",
            "1,3",
        ]);
        sweep_cmd(&args).unwrap();
    }

    #[test]
    fn sweep_command_runs_through_engine_workers() {
        let args = parse(&[
            "sweep",
            "--benchmark",
            "bv",
            "--size",
            "12",
            "--mids",
            "1,2,3",
            "--workers",
            "4",
        ]);
        sweep_cmd(&args).unwrap();
    }

    #[test]
    fn campaign_command_runs() {
        let args = parse(&[
            "campaign",
            "--size",
            "12",
            "--shots",
            "20",
            "--strategy",
            "remap",
        ]);
        campaign_cmd(&args).unwrap();
    }

    #[test]
    fn campaign_replicas_run_in_parallel() {
        let args = parse(&[
            "campaign",
            "--size",
            "12",
            "--shots",
            "20",
            "--strategy",
            "remap",
            "--campaigns",
            "3",
            "--workers",
            "3",
        ]);
        campaign_cmd(&args).unwrap();
    }

    #[test]
    fn campaign_shards_and_streaming_run() {
        campaign_cmd(&parse(&[
            "campaign",
            "--size",
            "12",
            "--shots",
            "24",
            "--strategy",
            "remap",
            "--shards",
            "3",
            "--workers",
            "2",
            "--streaming",
        ]))
        .unwrap();
    }

    #[test]
    fn campaign_rejects_timeline_with_streaming() {
        let err = campaign_cmd(&parse(&[
            "campaign",
            "--size",
            "12",
            "--shots",
            "8",
            "--strategy",
            "remap",
            "--streaming",
            "--timeline",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--timeline"), "{err}");
        assert!(err.to_string().contains("--streaming"), "{err}");
    }

    #[test]
    fn campaign_rejects_zero_shards() {
        let err = campaign_cmd(&parse(&[
            "campaign", "--size", "12", "--shots", "8", "--shards", "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
    }

    #[test]
    fn bench_quick_runs_and_report_serializes() {
        let args = parse(&["bench", "--quick", "--json"]);
        bench_cmd(&args).unwrap();
        // The report type itself round-trips through serde_json, with
        // the v1 per-workload units/s fields intact under v2.
        let report = BenchReport {
            schema: "natoms-bench-v2".into(),
            mode: "quick".into(),
            grid: "10x10".into(),
            meta: BenchMeta::collect(),
            workloads: vec![BenchWorkload {
                name: "fig07_compile".into(),
                passes: 1,
                units_per_pass: 10,
                total_secs: 0.5,
                secs_per_pass: 0.5,
                units_per_sec: 20.0,
            }],
            metrics: na_telemetry::Registry::new(true).snapshot(),
            pass_report: na_core::PassReport::default(),
        };
        let line = serde_json::to_string(&report).unwrap();
        assert!(line.contains("\"schema\":\"natoms-bench-v2\""));
        assert!(line.contains("\"units_per_pass\":10"));
        assert!(line.contains("\"git_rev\""));
        assert!(line.contains("\"timestamp\""));
        assert!(line.contains("\"metrics\""));
        assert!(line.contains("\"pass_report\""));
    }

    #[test]
    fn stats_command_round_trips_a_metrics_file() {
        // Build a snapshot through the real pipeline (compile through
        // a cache with telemetry on), write it, and re-read it through
        // the stats command's checks.
        let registry = na_telemetry::Registry::new(true);
        let mut recorder = na_telemetry::Recorder::new();
        recorder.record_ns(na_telemetry::Stage::Lower, 1_000);
        recorder.record_ns(na_telemetry::Stage::Place, 2_000);
        recorder.record_ns(na_telemetry::Stage::Schedule, 3_000);
        recorder.add(na_telemetry::Counter::CompileCacheMisses, 1);
        registry.merge(&recorder);
        let snapshot = registry.snapshot();
        let path = std::env::temp_dir().join("natoms_cli_stats_test.json");
        std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
        let path = path.to_str().unwrap().to_string();

        stats_cmd(&parse(&[
            "stats",
            "--file",
            &path,
            "--require-stages",
            "lower,place,schedule",
            "--require-cache",
        ]))
        .unwrap();
        // Missing stage and absent cache counters must fail loudly.
        let err = stats_cmd(&parse(&[
            "stats",
            "--file",
            &path,
            "--require-stages",
            "recompile",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("recompile"));
        let err = stats_cmd(&parse(&["stats", "--file", "/nonexistent.json"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn sweep_partial_failure_is_reported_not_fatal() {
        // A zero budget fails every job at its first deadline
        // checkpoint; the sweep still renders its table and reports
        // partial failure instead of aborting.
        let args = parse(&[
            "sweep",
            "--benchmark",
            "bv",
            "--size",
            "12",
            "--mids",
            "1,3",
            "--job-timeout",
            "0",
        ]);
        assert_eq!(sweep_cmd(&args).unwrap(), CmdStatus::PartialFailure);
    }

    #[test]
    fn generous_job_timeout_changes_nothing() {
        let args = parse(&[
            "sweep",
            "--benchmark",
            "bv",
            "--size",
            "12",
            "--mids",
            "1,3",
            "--job-timeout",
            "3600",
        ]);
        assert_eq!(sweep_cmd(&args).unwrap(), CmdStatus::Ok);
    }

    #[test]
    fn bad_job_timeouts_are_rejected() {
        let err = sweep_cmd(&parse(&["sweep", "--size", "12", "--job-timeout", "-1"])).unwrap_err();
        assert!(err.to_string().contains("non-negative"));
        let err = sweep_cmd(&parse(&["sweep", "--size", "12", "--job-timeout"])).unwrap_err();
        assert!(err.to_string().contains("expects a number of seconds"));
    }

    #[test]
    fn campaign_replica_failures_are_rows_not_aborts() {
        let args = parse(&[
            "campaign",
            "--size",
            "12",
            "--shots",
            "10",
            "--strategy",
            "remap",
            "--campaigns",
            "2",
            "--job-timeout",
            "0",
        ]);
        assert_eq!(campaign_cmd(&args).unwrap(), CmdStatus::PartialFailure);
    }

    #[test]
    fn sweep_writes_jsonl_to_a_file() {
        let path = std::env::temp_dir().join("natoms_cli_sweep.jsonl");
        let path = path.to_str().unwrap().to_string();
        let args = parse(&[
            "sweep",
            "--benchmark",
            "bv",
            "--size",
            "12",
            "--mids",
            "1,3",
            "--jsonl",
            &path,
        ]);
        assert_eq!(sweep_cmd(&args).unwrap(), CmdStatus::Ok);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let row: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(row.get("outcome").is_some(), "not a result row: {line}");
        }
    }

    #[test]
    fn finalize_outputs_writes_snapshots_on_partial_failure_too() {
        // Regression guard: an exit-2 run (typed failed rows) must
        // still write the --metrics snapshot and --trace export — the
        // failure counters and fault instants are what you inspect
        // after a partial failure.
        let metrics = std::env::temp_dir().join("natoms_cli_partial_metrics.json");
        let trace = std::env::temp_dir().join("natoms_cli_partial_trace.json");
        for p in [&metrics, &trace] {
            let _ = std::fs::remove_file(p);
        }
        let out = finalize_outputs(
            Ok(CmdStatus::PartialFailure),
            Some(metrics.to_str().unwrap()),
            Some(trace.to_str().unwrap()),
        )
        .unwrap();
        assert_eq!(out, CmdStatus::PartialFailure, "status must pass through");
        let snap: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(
            snap.get("schema").and_then(|s| s.as_str()),
            Some(na_telemetry::SNAPSHOT_SCHEMA)
        );
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let events: serde_json::Value = serde_json::from_str(&trace_text).unwrap();
        assert!(
            events.as_array().is_some(),
            "trace export must be an event array"
        );
        // An Err result must stay an Err and write nothing.
        let _ = std::fs::remove_file(&metrics);
        let err = finalize_outputs(
            Err(Box::new(ArgError("boom".into()))),
            Some(metrics.to_str().unwrap()),
            None,
        );
        assert!(err.is_err());
        assert!(!metrics.exists(), "failed runs must not write snapshots");
    }

    fn bench_row(name: &str, units_per_sec: f64) -> BenchWorkload {
        BenchWorkload {
            name: name.to_string(),
            passes: 1,
            units_per_pass: 10,
            total_secs: 1.0,
            secs_per_pass: 1.0,
            units_per_sec,
        }
    }

    #[test]
    fn bench_check_flags_regressions_and_passes_within_tolerance() {
        let path = std::env::temp_dir().join("natoms_cli_bench_baseline.json");
        std::fs::write(
            &path,
            r#"{"current":{"results":[{"name":"fig07_compile","units_per_sec":100.0},
                                      {"name":"placement","units_per_sec":50.0}]}}"#,
        )
        .unwrap();
        let path = path.to_str().unwrap();
        // Within tolerance: -20% on one workload at the default -25%.
        let fresh = vec![
            bench_row("fig07_compile", 80.0),
            bench_row("placement", 55.0),
        ];
        assert_eq!(
            check_bench_regression(&fresh, path, 25.0).unwrap(),
            CmdStatus::Ok
        );
        // Synthetically regressed: -60% must fail with exit-2 status.
        let slow = vec![
            bench_row("fig07_compile", 40.0),
            bench_row("placement", 55.0),
        ];
        assert_eq!(
            check_bench_regression(&slow, path, 25.0).unwrap(),
            CmdStatus::PartialFailure
        );
        // No common workloads is a hard error, not a silent pass.
        let alien = vec![bench_row("unknown_workload", 1.0)];
        assert!(check_bench_regression(&alien, path, 25.0).is_err());
    }

    #[test]
    fn bench_check_reads_all_three_baseline_shapes() {
        let report = r#"{"workloads":[{"name":"w","units_per_sec":10.0}]}"#;
        let compare = r#"{"baseline":{"results":[{"name":"w","units_per_sec":10.0}]}}"#;
        for text in [report, compare] {
            let value: serde_json::Value = serde_json::from_str(text).unwrap();
            assert_eq!(
                baseline_rows(&value).unwrap(),
                vec![("w".to_string(), 10.0)]
            );
        }
        let other: serde_json::Value = serde_json::from_str(r#"{"schema": "x"}"#).unwrap();
        assert!(baseline_rows(&other).is_none());
    }

    #[test]
    fn trace_cmd_summarizes_a_trace_file() {
        let path = std::env::temp_dir().join("natoms_cli_trace_summary.json");
        std::fs::write(
            &path,
            r#"[
              {"name":"job","cat":"job","ph":"B","ts":10.0,"pid":1,"tid":1,"args":{"id":1,"job":0,"task":"compile"}},
              {"name":"lower","cat":"pass","ph":"B","ts":11.0,"pid":1,"tid":1,"args":{"id":2,"parent":1}},
              {"name":"lower","cat":"pass","ph":"E","ts":15.0,"pid":1,"tid":1},
              {"name":"cache_wait","cat":"cache","ph":"B","ts":16.0,"pid":1,"tid":1,"args":{"id":3,"parent":1}},
              {"name":"cache_wait","cat":"cache","ph":"E","ts":18.0,"pid":1,"tid":1},
              {"name":"cache_hit","cat":"cache","ph":"i","s":"t","ts":19.0,"pid":1,"tid":1},
              {"name":"job","cat":"job","ph":"E","ts":20.0,"pid":1,"tid":1}
            ]"#,
        )
        .unwrap();
        let args = parse(&["trace", path.to_str().unwrap()]);
        assert_eq!(trace_cmd(&args).unwrap(), CmdStatus::Ok);
        // The folding itself: 3 matched spans, 1 instant, 0 unmatched.
        let events: Vec<serde_json::Value> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let (spans, instants, unmatched) = fold_trace_events(&events);
        assert_eq!((spans.len(), unmatched), (3, 0));
        assert_eq!(instants.get("cache_hit"), Some(&1));
        let job = spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!((job.id, job.job, job.dur_us), (1, Some(0), 10.0));
        assert!(spans.iter().all(|s| s.name == "job" || s.parent == 1));
    }

    #[test]
    fn trace_cmd_rejects_missing_and_malformed_files() {
        let args = parse(&["trace"]);
        assert!(trace_cmd(&args).is_err(), "no file argument");
        let path = std::env::temp_dir().join("natoms_cli_trace_bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let args = parse(&["trace", path.to_str().unwrap()]);
        assert!(trace_cmd(&args).is_err(), "malformed trace must error");
    }

    #[test]
    fn unwritable_output_paths_fail_up_front() {
        let err = validate_writable("/nonexistent-dir/x.json", "metrics").unwrap_err();
        assert!(err.to_string().contains("for writing"));
        // Validation must not truncate a file that already exists.
        let path = std::env::temp_dir().join("natoms_cli_writable.txt");
        std::fs::write(&path, "keep").unwrap();
        validate_writable(path.to_str().unwrap(), "JSONL").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "keep");
    }

    #[test]
    fn tolerance_rejects_unsupported_mid() {
        let args = parse(&["tolerance", "--mid", "2", "--strategy", "c-small"]);
        assert!(tolerance_cmd(&args).is_err());
    }

    /// Writes a QASM fixture under the target temp dir and returns its
    /// path as a String.
    fn qasm_fixture(name: &str, body: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).expect("fixture written");
        path.to_str().expect("utf-8 temp path").to_string()
    }

    const GHZ4: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n\
                        h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\nmeasure q -> c;\n";

    #[test]
    fn qasm_workloads_flow_through_every_command() {
        let path = qasm_fixture("natoms_cli_ghz4.qasm", GHZ4);
        compile_cmd(&parse(&["compile", "--qasm", &path, "--mid", "2"])).unwrap();
        sweep_cmd(&parse(&["sweep", "--qasm", &path, "--mids", "2,3"])).unwrap();
        success_cmd(&parse(&["success", "--qasm", &path, "--mid", "2"])).unwrap();
        tolerance_cmd(&parse(&[
            "tolerance",
            "--qasm",
            &path,
            "--mid",
            "3",
            "--trials",
            "2",
        ]))
        .unwrap();
        campaign_cmd(&parse(&[
            "campaign",
            "--qasm",
            &path,
            "--mid",
            "3",
            "--shots",
            "10",
            "--strategy",
            "remap",
        ]))
        .unwrap();
    }

    #[test]
    fn valueless_qasm_flag_is_rejected_not_ignored() {
        // `--qasm` with no path parses as a boolean flag; it must not
        // silently fall back to the default benchmark.
        let err = compile_cmd(&parse(&["compile", "--qasm"])).unwrap_err();
        assert!(err.to_string().contains("expects a file path"));
        let err = compile_cmd(&parse(&["compile", "--benchmark", "bv", "--qasm"])).unwrap_err();
        assert!(err.to_string().contains("--emit-qasm"));
    }

    #[test]
    fn qasm_and_benchmark_are_mutually_exclusive() {
        let path = qasm_fixture("natoms_cli_excl.qasm", GHZ4);
        let args = parse(&["compile", "--qasm", &path, "--benchmark", "bv"]);
        let err = compile_cmd(&args).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn qasm_parse_errors_surface_with_position() {
        let path = qasm_fixture(
            "natoms_cli_bad.qasm",
            "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n",
        );
        let err = compile_cmd(&parse(&["compile", "--qasm", &path])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "missing position in {msg:?}");
        assert!(msg.contains("frobnicate"), "missing gate name in {msg:?}");
    }

    #[test]
    fn missing_qasm_file_is_a_clean_error() {
        let err = compile_cmd(&parse(&["compile", "--qasm", "/nonexistent/x.qasm"])).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn emit_qasm_round_trips_through_the_importer() {
        // `compile --emit-qasm` output must be importable again — the
        // CLI surface of the round-trip contract.
        let c = common(&parse(&["compile", "--benchmark", "qaoa", "--size", "8"])).unwrap();
        let compiled = compile_common(&c).unwrap();
        let text = na_circuit::qasm::to_qasm(compiled.circuit()).unwrap();
        let back = parse_qasm(&text).unwrap();
        assert_eq!(back.fingerprint(), compiled.circuit().fingerprint());
    }
}
