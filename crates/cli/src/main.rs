//! `natoms` — command-line interface to the neutral-atom toolkit.
//!
//! ```console
//! natoms compile  --benchmark qaoa --size 30 --mid 3 [--no-native] [--no-zones] [--emit-qasm] [--passes]
//! natoms compile  --qasm examples/qasm/adder4.qasm --mid 3
//! natoms sweep    --benchmark bv --size 100 --mids 1,2,3,5,13 [--workers 8] [--jsonl]
//! natoms success  --benchmark cuccaro --size 50 --mid 3 --error 1e-3
//! natoms tolerance --benchmark cnu --size 30 --mid 4 --strategy reroute --trials 10
//! natoms campaign --benchmark cnu --size 30 --mid 4 --strategy c-small-reroute \
//!                 --shots 500 --error 0.035 --loss-factor 1 \
//!                 [--campaigns 8] [--shards 8] [--streaming] \
//!                 [--workers 8] [--jsonl] [--timeline]
//! natoms bench    [--json] [--quick]
//! natoms reload-time --width 10 --height 10 --margin 3 --trials 10
//! natoms stats    --file metrics.json [--require-stages lower,place] [--require-cache]
//! natoms trace    t.json [--top 10]
//! ```
//!
//! Every workload command (`compile`, `sweep`, `success`, `tolerance`,
//! `campaign`) accepts either `--benchmark <family>` or `--qasm
//! <file>` to run an imported OpenQASM 2.0 circuit instead.
//!
//! Every subcommand accepts a global `--metrics <file>` flag: it
//! enables `na-telemetry` collection for the run and writes the merged
//! [`na_telemetry::MetricsSnapshot`] JSON to `<file>` on success.
//! `natoms stats` pretty-prints such a file. Telemetry is strictly
//! observational — outputs are identical with or without `--metrics`.
//!
//! Likewise a global `--trace <file>` flag records the causal span
//! timeline (engine jobs, compile passes, campaign shards, fault and
//! cache events) and writes Chrome trace-event JSON on exit — load it
//! in Perfetto / `chrome://tracing`, or summarize it with `natoms
//! trace <file>`. Tracing shares telemetry's strictly-observational
//! contract.
//!
//! `sweep` and `campaign` run through the `na-engine` worker pool;
//! results are identical at any `--workers` value.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
natoms — neutral-atom quantum architecture toolkit

USAGE: natoms <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
  compile      compile one benchmark and print schedule metrics
  sweep        gate count/depth across MIDs and sizes
  success      predicted shot success, NA vs SC
  tolerance    max atom loss before reload, per strategy
  campaign     multi-shot campaign under atom loss
  bench        time the paper-grid compile/loss workloads [--json] [--quick]
               [--check BASELINE.json [--tolerance PCT]]: compare against a
               committed baseline and exit 2 on throughput regression
  reload-time  derive the array reload time from assembly physics
  stats        pretty-print a --metrics snapshot file
  trace        summarize a --trace file (critical path per job, top-k
               slowest spans, cache-wait totals)

COMMON OPTIONS:
  --metrics FILE    collect telemetry for this run and write the
                    metrics snapshot JSON to FILE (any subcommand)
  --trace FILE      record causal spans (jobs, passes, shards) and write
                    Chrome trace-event JSON to FILE — load it in
                    Perfetto / chrome://tracing (any subcommand)
  --benchmark bv|cnu|cuccaro|qft-adder|qaoa   (default bv)
  --qasm FILE       run an imported OpenQASM 2.0 circuit instead
  --size N          program qubit budget        (default 30)
  --grid WxH        device dimensions           (default 10x10)
  --mid D           max interaction distance    (default 3)
  --seed N          RNG seed                    (default 0)
  --no-native       lower Toffolis to 2q gates
  --no-zones        disable restriction zones
  --emit-qasm       print the compiled schedule as QASM (compile only)
  --passes          print per-pass wall time and artifact stats from
                    the self-checking pass pipeline (compile only)

ENGINE OPTIONS (sweep, campaign):
  --workers N       worker threads              (default: all cores)
  --jsonl [FILE]    emit structured JSON-lines rows (stdout, or FILE)
  --job-timeout S   per-job wall-clock budget in seconds (also bench);
                    over-budget jobs become typed failed rows
  --campaigns N     parallel campaign replicas  (campaign only)
  --shards K        split each campaign into K deterministic shot-range
                    shards fanned across the pool (campaign only)
  --streaming       constant-memory statistics: drop the per-interval
                    vector, report streak summaries (campaign only;
                    incompatible with --timeline)

FAILURE SEMANTICS (see the README for the full contract):
  exit 0   every row succeeded
  exit 1   error (bad arguments, I/O failure, single-point failure)
  exit 2   ran to completion but some rows carry typed failures
  NATOMS_FAULTS='site[#scope]=action[@hit][;...]' injects
  deterministic faults (panic | error | delay:<ms>) for chaos testing

Run `natoms <SUBCOMMAND> --help` fields in the README for the full list.";

/// Exit code for a run that completed but produced typed failed rows.
const PARTIAL_FAILURE_CODE: u8 = 2;

fn main() -> ExitCode {
    // Arm any NATOMS_FAULTS chaos plans before anything else runs; a
    // malformed spec is a startup error, not a silently-ignored one.
    if let Err(e) = na_faults::arm_from_env() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Global --metrics flag: enable telemetry before the subcommand
    // runs, dump the merged snapshot after it succeeds.
    let metrics_path = match args.get("metrics") {
        Some(path) => Some(path.to_string()),
        None => {
            // A valueless --metrics parses as a boolean flag; refuse
            // it rather than silently collecting into nowhere.
            if args.flag("metrics") {
                eprintln!("error: --metrics expects a file path\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            None
        }
    };
    if let Some(path) = &metrics_path {
        // Fail before the workload runs, not after minutes of compute.
        if let Err(e) = commands::validate_writable(path, "metrics") {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        na_telemetry::set_enabled(true);
    }
    // Global --trace flag: same shape as --metrics, but recording the
    // causal span timeline instead of aggregate counters.
    let trace_path = match args.get("trace") {
        Some(path) => Some(path.to_string()),
        None => {
            if args.flag("trace") && args.subcommand() != Some("trace") {
                eprintln!("error: --trace expects a file path\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            None
        }
    };
    if let Some(path) = &trace_path {
        if let Err(e) = commands::validate_writable(path, "trace") {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        na_telemetry::trace::set_enabled(true);
    }
    // Only `natoms trace <file>` takes a positional argument.
    if let Some(pos) = args.positional() {
        if args.subcommand() != Some("trace") {
            eprintln!("error: unexpected positional argument {pos:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let result = match args.subcommand() {
        Some("compile") => commands::compile_cmd(&args),
        Some("sweep") => commands::sweep_cmd(&args),
        Some("success") => commands::success_cmd(&args),
        Some("tolerance") => commands::tolerance_cmd(&args),
        Some("campaign") => commands::campaign_cmd(&args),
        Some("bench") => commands::bench_cmd(&args),
        Some("reload-time") => commands::reload_time_cmd(&args),
        Some("stats") => commands::stats_cmd(&args),
        Some("trace") => commands::trace_cmd(&args),
        Some(other) => {
            eprintln!("error: unknown subcommand {other:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
        None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
    };
    let result = commands::finalize_outputs(result, metrics_path.as_deref(), trace_path.as_deref());
    match result {
        Ok(commands::CmdStatus::Ok) => ExitCode::SUCCESS,
        Ok(commands::CmdStatus::PartialFailure) => ExitCode::from(PARTIAL_FAILURE_CODE),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
