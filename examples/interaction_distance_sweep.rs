//! Interaction-distance trade-off study: for a Toffoli-heavy adder,
//! sweep the maximum interaction distance and compare (a) native
//! multiqubit vs decomposed compilation and (b) the predicted success
//! rate against a superconducting-style baseline — a miniature of the
//! paper's Figs. 6 and 7 on one workload.
//!
//! Run with: `cargo run --release --example interaction_distance_sweep`

use natoms::arch::{Grid, RestrictionPolicy};
use natoms::benchmarks::Benchmark;
use natoms::compiler::{compile, CompilerConfig};
use natoms::noise::{success_probability, NoiseParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::new(10, 10);
    let program = Benchmark::Cuccaro.generate(30, 0);
    println!("30-qubit Cuccaro adder, source: {}\n", program.metrics());

    println!(
        "{:>4} | {:>12} {:>11} | {:>12} {:>11}",
        "MID", "native gates", "native depth", "2q-only gates", "2q depth"
    );
    for mid in [2.0, 3.0, 4.0, 5.0, 8.0, 13.0] {
        let native = compile(&program, &grid, &CompilerConfig::new(mid))?;
        let lowered = compile(
            &program,
            &grid,
            &CompilerConfig::new(mid).with_native_multiqubit(false),
        )?;
        let (nm, lm) = (native.metrics(), lowered.metrics());
        println!(
            "{mid:>4} | {:>12} {:>11} | {:>12} {:>11}",
            nm.total_gates(),
            nm.depth,
            lm.total_gates(),
            lm.depth
        );
    }

    // NA at MID 3 (native Toffoli) vs SC-style MID 1 (2q only), equal
    // two-qubit error rates.
    println!(
        "\n{:>9} {:>10} {:>10}",
        "2q error", "NA success", "SC success"
    );
    let na = compile(&program, &grid, &CompilerConfig::new(3.0))?;
    let sc = compile(
        &program,
        &grid,
        &CompilerConfig::new(1.0)
            .with_native_multiqubit(false)
            .with_restriction(RestrictionPolicy::None),
    )?;
    for e in [1e-4, 3e-4, 1e-3, 3e-3, 1e-2] {
        let p_na = success_probability(&na, &NoiseParams::neutral_atom(e)).probability();
        let p_sc = success_probability(&sc, &NoiseParams::superconducting(e)).probability();
        println!("{e:>9.0e} {p_na:>10.4} {p_sc:>10.4}");
    }
    println!("\nNative multiqubit gates plus long-range interactions let the NA");
    println!("device run this adder at error rates where the SC baseline fails.");
    Ok(())
}
