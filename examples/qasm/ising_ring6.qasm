// One Trotter step of a transverse-field Ising ring: exercises a
// parametrized gate macro (the standard rzz built from cx + u1),
// whole-register broadcast with parameters, and angle expressions.
OPENQASM 2.0;
include "qelib1.inc";
gate rzz(theta) a,b
{
  cx a,b;
  u1(theta) b;
  cx a,b;
}
qreg q[6];
h q;
rzz(pi/3) q[0],q[1];
rzz(pi/3) q[1],q[2];
rzz(pi/3) q[2],q[3];
rzz(pi/3) q[3],q[4];
rzz(pi/3) q[4],q[5];
rzz(pi/3) q[5],q[0];
rx(2*0.35) q;
