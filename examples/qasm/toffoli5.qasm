// A compute/uncompute Toffoli cascade (AND of three controls into
// q[4] via the ancilla q[3]): exercises ccx — which the neutral-atom
// compiler keeps native — plus id and barrier tolerance.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[1];
id q[0];
x q[0];
x q[1];
x q[2];
ccx q[0],q[1],q[3];
barrier q;
ccx q[2],q[3],q[4];
barrier q;
ccx q[0],q[1],q[3];
measure q[4] -> c[0];
