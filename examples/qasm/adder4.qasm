// The classic OpenQASM 2.0 ripple-carry adder (Cuccaro): b := a + b.
// Exercises user-defined gate macros, multiple quantum registers, and
// whole-register broadcast. Prepares a = 1, b = 15, so the sum
// overflows into cout: b -> 0, cout -> 1.
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate unmaj a,b,c
{
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg cin[1];
qreg a[4];
qreg b[4];
qreg cout[1];
creg ans[5];
x a[0];
x b;
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
majority a[1],b[2],a[2];
majority a[2],b[3],a[3];
cx a[3],cout[0];
unmaj a[2],b[3],a[3];
unmaj a[1],b[2],a[2];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure b[2] -> ans[2];
measure b[3] -> ans[3];
measure cout[0] -> ans[4];
