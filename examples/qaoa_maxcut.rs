//! QAOA MAX-CUT on a neutral-atom device: the near-term workload the
//! paper's introduction motivates. Sweeps the maximum interaction
//! distance and shows the SWAP count collapsing as connectivity grows,
//! plus the serialization cost of the restriction zones.
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use natoms::arch::{Grid, RestrictionPolicy};
use natoms::benchmarks::{qaoa_maxcut, random_graph};
use natoms::compiler::{compile, CompilerConfig};
use natoms::noise::{success_probability, NoiseParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 40;
    let seed = 7;
    let edges = random_graph(n, 0.1, seed);
    println!(
        "MAX-CUT instance: {n} vertices, {} edges (density 0.1)",
        edges.len()
    );

    let program = qaoa_maxcut(n, 0.1, seed);
    println!("ansatz: {}", program.metrics());

    let grid = Grid::new(10, 10);
    let params = NoiseParams::neutral_atom(1e-3);

    println!(
        "\n{:>4} {:>7} {:>6} {:>7} {:>12} {:>9}",
        "MID", "gates", "swaps", "depth", "ideal depth", "success"
    );
    for mid in [1.0, 2.0, 3.0, 5.0, 8.0, 13.0] {
        let cfg = CompilerConfig::new(mid).with_native_multiqubit(false);
        let compiled = compile(&program, &grid, &cfg)?;
        let ideal = compile(
            &program,
            &grid,
            &cfg.with_restriction(RestrictionPolicy::None),
        )?;
        let m = compiled.metrics();
        let p = success_probability(&compiled, &params).probability();
        println!(
            "{mid:>4} {:>7} {:>6} {:>7} {:>12} {:>9.4}",
            m.total_gates(),
            m.swaps,
            m.depth,
            ideal.metrics().depth,
            p
        );
    }
    println!("\nLong-range interactions remove SWAPs; restriction zones");
    println!("serialize the parallel cost layer (depth vs ideal depth).");
    Ok(())
}
