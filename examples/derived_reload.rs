//! From loading physics to campaign wall-clock: derive the array
//! reload time with the atom-by-atom assembly simulator, feed it into
//! a loss campaign, and see how loading quality moves total overhead.
//!
//! Run with: `cargo run --release --example derived_reload`

use natoms::arch::{AssemblyParams, AssemblySimulator, Grid};
use natoms::benchmarks::Benchmark;
use natoms::loss::{run_campaign, CampaignConfig, LossModel, OverheadTimes, ShotTarget, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::new(10, 10);
    let program = Benchmark::Cnu.generate(30, 0);

    println!("Deriving the 10x10 reload time from assembly physics:\n");
    println!(
        "{:>14} {:>10} {:>9} {:>9}",
        "load prob", "reload s", "attempts", "moves"
    );
    for load_probability in [0.40, 0.55, 0.70] {
        let params = AssemblyParams {
            load_probability,
            ..AssemblyParams::default()
        };
        let mut sim = AssemblySimulator::new(params, 7);
        let (_, report) = sim.assemble(10, 10, 3);
        println!(
            "{load_probability:>14} {:>10.3} {:>9} {:>9}",
            report.duration, report.attempts, report.moves
        );
    }

    println!("\nCampaign overhead with the physics-derived reload (500 shots):\n");
    for (label, overheads) in [
        ("paper constant 0.3 s", OverheadTimes::default()),
        (
            "derived from assembly",
            OverheadTimes::default().with_derived_reload(10, 10, 3, 7),
        ),
    ] {
        let mut cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
            .with_target(ShotTarget::Attempts(500))
            .with_two_qubit_error(5e-3)
            .with_seed(7);
        cfg.overheads = overheads;
        let result = run_campaign(&program, &grid, LossModel::new(7), &cfg)?;
        println!(
            "  {:<22} reload {:.3} s x{:<3} -> total overhead {:.2} s",
            label,
            cfg.overheads.reload,
            result.ledger.reloads,
            result.ledger.overhead_time()
        );
    }
    Ok(())
}
