//! Quickstart: build a circuit, compile it for a neutral-atom device,
//! and read the metrics the paper's evaluation is phrased in.
//!
//! Run with: `cargo run --example quickstart`

use natoms::arch::Grid;
use natoms::circuit::{Circuit, Qubit};
use natoms::compiler::{compile, verify, CompilerConfig};
use natoms::noise::{success_probability, NoiseParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small entangling circuit with a native three-qubit gate.
    let mut program = Circuit::new(5);
    program.h(Qubit(0));
    for i in 0..4u32 {
        program.cnot(Qubit(i), Qubit(i + 1));
    }
    program.toffoli(Qubit(0), Qubit(1), Qubit(2));
    program.toffoli(Qubit(2), Qubit(3), Qubit(4));
    println!("source program:\n{program}");

    // A 10x10 atom array with interactions up to Euclidean distance 3.
    let grid = Grid::new(10, 10);
    let config = CompilerConfig::new(3.0);

    let compiled = compile(&program, &grid, &config)?;
    verify(&compiled, &grid)?;

    println!("compiled: {}", compiled.metrics());
    println!("timesteps: {}", compiled.num_timesteps());
    for op in compiled.ops().iter().take(8) {
        let what = match op.source {
            Some(g) => compiled.circuit().gates()[g].to_string(),
            None => "swap".to_string(),
        };
        println!("  t={:<3} {:<18} at {:?}", op.time, what, op.sites);
    }

    // How likely is one shot to succeed at a 0.5% two-qubit error?
    let params = NoiseParams::neutral_atom(5e-3);
    let p = success_probability(&compiled, &params);
    println!(
        "success: {:.4} (gates {:.4} x coherence {:.6}), shot duration {:.1} us",
        p.probability(),
        p.gate_success,
        p.coherence,
        p.duration * 1e6
    );

    // The same program without native multiqubit gates costs more.
    let lowered = compile(&program, &grid, &config.with_native_multiqubit(false))?;
    println!(
        "without native Toffoli: {} (vs {} native)",
        lowered.metrics().total_gates(),
        compiled.metrics().total_gates()
    );
    Ok(())
}
