//! Import an OpenQASM 2.0 circuit and drive it through the whole
//! pipeline: compile on the paper grid, price it with the success
//! model, and run a multi-shot loss campaign.
//!
//! ```console
//! cargo run --release --example qasm_import [path/to/circuit.qasm]
//! ```
//!
//! Defaults to the committed corpus adder (`examples/qasm/adder4.qasm`).

use natoms::arch::Grid;
use natoms::circuit::qasm::parse_qasm;
use natoms::compiler::{compile, verify, CompilerConfig};
use natoms::loss::{run_campaign, CampaignConfig, LossModel, ShotTarget, Strategy};
use natoms::noise::{success_probability, NoiseParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/qasm/adder4.qasm".to_string());
    let src = std::fs::read_to_string(&path)?;
    let circuit = parse_qasm(&src).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} qubits, {} gates, depth {}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.metrics().depth
    );

    let grid = Grid::new(10, 10);
    let config = CompilerConfig::new(3.0);
    let compiled = compile(&circuit, &grid, &config)?;
    verify(&compiled, &grid)?;
    println!("compiled at MID {}: {}", config.mid, compiled.metrics());

    let success = success_probability(&compiled, &NoiseParams::neutral_atom(1e-3));
    println!(
        "predicted shot success at 0.1% two-qubit error: {:.4}",
        success.probability()
    );

    let campaign_cfg = CampaignConfig::new(3.0, Strategy::CompileSmallReroute)
        .with_target(ShotTarget::Attempts(200))
        .with_seed(1);
    let result = run_campaign(&circuit, &grid, LossModel::new(1), &campaign_cfg)?;
    println!(
        "campaign: {}/{} shots successful, {} lost to atom loss, {} reloads",
        result.shots_successful,
        result.shots_attempted,
        result.discarded_by_loss,
        result.ledger.reloads
    );
    Ok(())
}
