//! Atom-loss resilience: run a multi-shot campaign of a 29-qubit CNU
//! under realistic loss rates with each coping strategy, and compare
//! reload counts, overhead time, and effective shot throughput.
//!
//! Run with: `cargo run --release --example atom_loss_resilience`

use natoms::arch::Grid;
use natoms::benchmarks::Benchmark;
use natoms::loss::{
    max_loss_tolerance, run_campaign, CampaignConfig, LossModel, ShotTarget, Strategy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = Grid::new(10, 10);
    let program = Benchmark::Cnu.generate(30, 0);
    let mid = 4.0;

    println!("29-qubit CNU on a 100-atom array, MID {mid}; 2% measured-atom loss\n");
    println!(
        "{:<18} {:>9} {:>8} {:>10} {:>11} {:>12}",
        "strategy", "tolerance", "reloads", "overhead s", "success/500", "shots/reload"
    );
    for strategy in Strategy::ALL {
        if !strategy.supports_mid(mid) {
            continue;
        }
        let tol = max_loss_tolerance(&program, &grid, mid, strategy, 3)?;
        let cfg = CampaignConfig::new(mid, strategy)
            .with_target(ShotTarget::Attempts(500))
            .with_two_qubit_error(5e-3)
            .with_seed(3);
        let result = run_campaign(&program, &grid, LossModel::new(3), &cfg)?;
        println!(
            "{:<18} {:>8.0}% {:>8} {:>10.2} {:>11} {:>12.1}",
            strategy.name(),
            tol.device_fraction * 100.0,
            result.ledger.reloads,
            result.ledger.overhead_time(),
            result.shots_successful,
            result.mean_shots_before_reload(),
        );
    }

    println!("\nThe balanced compile-small+reroute strategy keeps reloads rare");
    println!("without recompiling, which is what makes 0.3 s array reloads");
    println!("affordable over thousands of shots.");
    Ok(())
}
