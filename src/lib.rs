//! # natoms — a neutral-atom quantum architecture toolkit
//!
//! A Rust reproduction of Baker et al., *"Exploiting Long-Distance
//! Interactions and Tolerating Atom Loss in Neutral Atom Quantum
//! Architectures"* (ISCA 2021, arXiv:2111.06469).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`circuit`] — quantum circuit IR, DAGs, decompositions;
//! * [`arch`] — the NA hardware model: grids, interaction distances,
//!   restriction zones, virtual remapping;
//! * [`benchmarks`] — the paper's five parametrized benchmark families;
//! * [`compiler`] — the NA-aware compiler (mapping/routing/scheduling);
//! * [`noise`] — the success-probability model and NA-vs-SC parameters;
//! * [`loss`] — atom-loss models, coping strategies, and campaign
//!   simulation;
//! * [`engine`] — the parallel experiment-execution engine: sweep
//!   specs, a multi-threaded worker pool with deterministic results,
//!   a memoized compilation cache, and JSON-lines result sinks;
//! * [`telemetry`] — zero-dependency structured instrumentation:
//!   stage timers, counters, and latency histograms, disabled by
//!   default and strictly observational (golden digests are
//!   byte-identical with metrics on or off);
//! * [`faults`] — failure-domain primitives: deterministic failpoint
//!   injection (`NATOMS_FAULTS`) and cooperative deadlines, likewise
//!   one relaxed atomic load when disabled.
//!
//! # Quickstart
//!
//! ```
//! use natoms::arch::Grid;
//! use natoms::benchmarks::Benchmark;
//! use natoms::compiler::{compile, CompilerConfig};
//! use natoms::noise::{success_probability, NoiseParams};
//!
//! // A 30-qubit QAOA instance on a 10x10 atom array at MID 3.
//! let program = Benchmark::Qaoa.generate(30, 42);
//! let grid = Grid::new(10, 10);
//! let compiled = compile(&program, &grid, &CompilerConfig::new(3.0))?;
//!
//! let metrics = compiled.metrics();
//! println!("{metrics}");
//!
//! let p = success_probability(&compiled, &NoiseParams::neutral_atom(1e-3));
//! assert!(p.probability() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin`
//! for the harnesses that regenerate every figure of the paper.

/// The neutral-atom hardware model ([`na_arch`]).
pub mod arch {
    pub use na_arch::*;
}

/// Quantum circuit IR ([`na_circuit`]).
pub mod circuit {
    pub use na_circuit::*;
}

/// Parametrized benchmark circuits ([`na_benchmarks`]).
pub mod benchmarks {
    pub use na_benchmarks::*;
}

/// The NA-aware compiler ([`na_core`]).
pub mod compiler {
    pub use na_core::*;
}

/// Success-rate modelling ([`na_noise`]).
pub mod noise {
    pub use na_noise::*;
}

/// Atom-loss machinery ([`na_loss`]).
pub mod loss {
    pub use na_loss::*;
}

/// The parallel experiment-execution engine ([`na_engine`]).
pub mod engine {
    pub use na_engine::*;
}

/// Structured instrumentation ([`na_telemetry`]).
pub mod telemetry {
    pub use na_telemetry::*;
}

/// Fault injection and cooperative deadlines ([`na_faults`]).
pub mod faults {
    pub use na_faults::*;
}
