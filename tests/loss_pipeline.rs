//! Integration tests for the atom-loss pipeline: compiled schedules
//! driven through loss injection, strategy reactions, and campaign
//! simulation.

use natoms::arch::Grid;
use natoms::benchmarks::Benchmark;
use natoms::loss::{
    max_loss_tolerance, run_campaign, CampaignConfig, LossModel, LossOutcome, ShotTarget, Strategy,
    StrategyState,
};

fn grid() -> Grid {
    Grid::new(10, 10)
}

#[test]
fn strategy_tolerance_ordering_matches_paper() {
    // Fig. 10's qualitative ordering at a mid-range MID: recompile >=
    // reroute variants >= plain remapping >= always reload (averaged
    // over seeds).
    let program = Benchmark::Cnu.generate(30, 0);
    let mean = |strategy: Strategy| -> f64 {
        (0..6)
            .map(|s| {
                max_loss_tolerance(&program, &grid(), 4.0, strategy, s)
                    .unwrap()
                    .device_fraction
            })
            .sum::<f64>()
            / 6.0
    };
    let recompile = mean(Strategy::FullRecompile);
    let reroute = mean(Strategy::MinorReroute);
    let remap = mean(Strategy::VirtualRemap);
    let always = mean(Strategy::AlwaysReload);
    assert!(
        recompile >= reroute,
        "recompile {recompile} vs reroute {reroute}"
    );
    assert!(reroute >= remap, "reroute {reroute} vs remap {remap}");
    assert!(remap >= always * 0.9, "remap {remap} vs always {always}");
}

#[test]
fn measured_sites_stay_on_atoms_through_long_loss_sequences() {
    let program = Benchmark::Cuccaro.generate(30, 0);
    let mut state =
        StrategyState::new(&program, &grid(), 5.0, Strategy::MinorReroute, None).expect("compiles");
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..60 {
        let usable: Vec<_> = state.grid().usable_sites().collect();
        let victim = usable[rng.gen_range(0..usable.len())];
        match state.apply_loss(victim) {
            LossOutcome::NeedsReload => {
                state.reload();
            }
            _ => {
                for m in state.measured_sites() {
                    assert!(state.grid().is_usable(m), "program atom on a hole");
                }
            }
        }
    }
}

#[test]
fn campaign_shot_accounting_is_consistent() {
    let program = Benchmark::Cnu.generate(30, 0);
    for strategy in Strategy::ALL {
        let mid = 4.0;
        let cfg = CampaignConfig::new(mid, strategy)
            .with_target(ShotTarget::Attempts(120))
            .with_two_qubit_error(2e-3)
            .with_seed(8);
        let r = run_campaign(&program, &grid(), LossModel::new(8), &cfg)
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        assert_eq!(
            r.shots_attempted,
            r.shots_successful + r.discarded_by_loss + r.failed_by_noise,
            "{strategy}"
        );
        assert_eq!(r.ledger.fluorescences, r.shots_attempted, "{strategy}");
        let interval_sum: u64 = r.shots_between_reloads.iter().map(|&v| u64::from(v)).sum();
        assert_eq!(interval_sum, r.shots_successful, "{strategy}");
        assert_eq!(
            r.shots_between_reloads.len() as u64,
            r.ledger.reloads + 1,
            "{strategy}"
        );
    }
}

#[test]
fn loss_improvement_scales_shots_per_reload() {
    // Fig. 13's claim: better loss rates mean proportionally more
    // shots between reloads.
    let program = Benchmark::Cnu.generate(30, 0);
    let run = |factor: f64| -> f64 {
        let cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
            .with_target(ShotTarget::Attempts(1500))
            .with_two_qubit_error(1e-3)
            .with_seed(21);
        let loss = LossModel::new(22).with_improvement_factor(factor);
        run_campaign(&program, &grid(), loss, &cfg)
            .unwrap()
            .mean_shots_before_reload()
    };
    let base = run(1.0);
    let better = run(10.0);
    assert!(
        better > 4.0 * base,
        "10x loss improvement only scaled shots {base} -> {better}"
    );
}

#[test]
fn destructive_readout_is_much_worse() {
    let program = Benchmark::Cnu.generate(30, 0);
    let cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
        .with_target(ShotTarget::Attempts(150))
        .with_two_qubit_error(1e-3)
        .with_seed(5);
    let lowloss = run_campaign(&program, &grid(), LossModel::new(5), &cfg).unwrap();
    let destructive =
        run_campaign(&program, &grid(), LossModel::destructive_readout(5), &cfg).unwrap();
    assert!(
        destructive.ledger.reloads > 2 * lowloss.ledger.reloads,
        "destructive {} vs low-loss {} reloads",
        destructive.ledger.reloads,
        lowloss.ledger.reloads
    );
}

#[test]
fn overhead_dominated_by_reloads_for_always_reload() {
    let program = Benchmark::Cnu.generate(30, 0);
    let cfg = CampaignConfig::new(3.0, Strategy::AlwaysReload)
        .with_target(ShotTarget::Attempts(300))
        .with_two_qubit_error(1e-3)
        .with_seed(2);
    let r = run_campaign(&program, &grid(), LossModel::new(2), &cfg).unwrap();
    assert!(
        r.ledger.reload_time > r.ledger.overhead_time() * 0.5,
        "reloads {}s of {}s overhead",
        r.ledger.reload_time,
        r.ledger.overhead_time()
    );
}

#[test]
fn campaign_timeline_matches_ledger() {
    let program = Benchmark::Cnu.generate(30, 0);
    let cfg = CampaignConfig::new(4.0, Strategy::VirtualRemap)
        .with_target(ShotTarget::Attempts(80))
        .with_two_qubit_error(1e-3)
        .with_seed(6)
        .with_timeline();
    let r = run_campaign(&program, &grid(), LossModel::new(6), &cfg).unwrap();
    use natoms::loss::EventKind;
    let count = |k: EventKind| r.timeline.iter().filter(|e| e.kind == k).count() as u64;
    assert_eq!(count(EventKind::RunCircuit), r.shots_attempted);
    assert_eq!(count(EventKind::Fluorescence), r.ledger.fluorescences);
    assert_eq!(count(EventKind::Reload), r.ledger.reloads);
    assert_eq!(count(EventKind::Remap), r.ledger.remaps);
}
