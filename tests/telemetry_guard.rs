//! The no-perturbation contract of `na-telemetry`, pinned end to end:
//! compiling, placing, and running a loss campaign with metrics
//! collection enabled must produce **bit-identical** results to the
//! same work with collection disabled. Telemetry is strictly
//! observational — it draws no RNG and changes no float accumulation
//! order — and this test is the tripwire that keeps it that way.

use natoms::arch::Grid;
use natoms::benchmarks::Benchmark;
use natoms::compiler::{
    compile, initial_layout, placement_digest, schedule_digest, CompilerConfig,
};
use natoms::engine::{Engine, ExperimentSpec, Task};
use natoms::loss::{run_campaign, CampaignConfig, CampaignResult, LossModel, ShotTarget, Strategy};
use natoms::telemetry as tel;

/// One single-job compile experiment through the engine, returning its
/// row. Used to pin the per-pass report contract on both telemetry
/// arms.
fn engine_compile_row() -> natoms::engine::RunRecord {
    let mut spec = ExperimentSpec::new("guard", Grid::new(10, 10));
    spec.push(
        Benchmark::Bv,
        16,
        0,
        CompilerConfig::new(3.0),
        Task::Compile,
    );
    let mut rows = Engine::with_workers(1).run(&spec);
    assert_eq!(rows.len(), 1);
    rows.pop().expect("one row")
}

/// The workload both arms of the comparison run: a compile + placement
/// digest pair per benchmark family, and two campaigns (a remap-only
/// strategy compared in full, and a FullRecompile strategy whose one
/// wall-clock field is zeroed before comparison).
fn pipeline_digests() -> (Vec<(u64, u64)>, CampaignResult, CampaignResult) {
    let grid = Grid::new(10, 10);
    let cfg = CompilerConfig::new(3.0);
    let mut compiles = Vec::new();
    for b in [Benchmark::Bv, Benchmark::Qaoa, Benchmark::Cuccaro] {
        let program = b.generate(20, 0);
        let compiled = compile(&program, &grid, &cfg).expect("compiles");
        let layout = initial_layout(&program, &grid, &cfg).expect("places");
        compiles.push((schedule_digest(&compiled), placement_digest(&layout)));
    }

    let program = Benchmark::Bv.generate(16, 0);
    let reroute_cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
        .with_target(ShotTarget::Attempts(60))
        .with_seed(7);
    let reroute =
        run_campaign(&program, &grid, LossModel::new(3), &reroute_cfg).expect("campaign runs");

    let recompile_cfg = CampaignConfig::new(4.0, Strategy::FullRecompile)
        .with_target(ShotTarget::Attempts(30))
        .with_seed(7);
    let mut recompile = run_campaign(
        &program,
        &grid,
        LossModel::destructive_readout(3),
        &recompile_cfg,
    )
    .expect("campaign runs");
    // The recompile strategy's ledger records measured wall-clock
    // compile time — the one legitimately nondeterministic field.
    // Zero it so the rest of the result is compared exactly.
    recompile.ledger.recompile_time = 0.0;

    (compiles, reroute, recompile)
}

#[test]
fn metrics_on_and_off_produce_bit_identical_results() {
    // Baseline with telemetry disabled (the default).
    tel::set_enabled(false);
    let (compiles_off, reroute_off, recompile_off) = pipeline_digests();
    let row_off = engine_compile_row();

    // Same work with collection enabled.
    tel::set_enabled(true);
    tel::reset();
    let (compiles_on, reroute_on, recompile_on) = pipeline_digests();
    let row_on = engine_compile_row();
    let snapshot = tel::snapshot();
    tel::set_enabled(false);
    tel::reset();

    assert_eq!(
        compiles_off, compiles_on,
        "schedule/placement digests changed under telemetry"
    );
    assert_eq!(
        reroute_off, reroute_on,
        "reroute campaign result changed under telemetry"
    );
    assert_eq!(
        recompile_off, recompile_on,
        "recompile campaign result changed under telemetry"
    );

    // Engine rows: the observable outcome is identical on both arms;
    // the per-pass pipeline report is attached only when telemetry is
    // on (wall-clock fields, like `timings`, are exempt from the
    // byte-identity contract).
    assert_eq!(
        row_off.outcome, row_on.outcome,
        "engine row outcome changed under telemetry"
    );
    assert!(
        row_off.pass_report.is_none(),
        "pass report with metrics off"
    );
    let report = row_on
        .pass_report
        .as_ref()
        .expect("telemetry-on engine row carries a pass report");
    let names: Vec<&str> = report.passes.iter().map(|p| p.pass.as_str()).collect();
    assert_eq!(
        names,
        [
            "lower",
            "validate_arity",
            "place",
            "route_schedule",
            "verify",
            "finalize"
        ],
        "unexpected pass list in the engine row's report"
    );

    // And the enabled arm must actually have observed the pipeline —
    // otherwise this test would pass vacuously with dead telemetry.
    assert!(snapshot.stage("lower").is_some(), "no lower-stage samples");
    assert!(snapshot.stage("place").is_some(), "no place-stage samples");
    assert!(
        snapshot.stage("route").is_some(),
        "no route-stage samples (scheduler routing split)"
    );
    assert!(
        snapshot.stage("schedule").is_some(),
        "no schedule-stage samples"
    );
    assert!(snapshot.stage("shot").is_some(), "no per-shot samples");
    assert!(
        snapshot.stage("recompile").is_some(),
        "no recompile samples"
    );
    assert!(snapshot.counter("compiles") > 0);
    assert!(snapshot.counter("shots_attempted") >= 90);
    assert!(snapshot.counter("losses_drawn") > 0);
}
