//! The no-perturbation contract of `na-telemetry::trace`, pinned end
//! to end: compiling, placing, and running loss campaigns with span
//! tracing enabled must produce **bit-identical** results to the same
//! work with tracing disabled. Tracing is strictly observational — it
//! draws no RNG and changes no float accumulation order — and this
//! test is the tripwire that keeps it that way.
//!
//! A second test pins the *shape* of the Chrome trace-event export on
//! a sharded campaign: valid JSON array, matched begin/end pairs,
//! monotone per-track timestamps, and per-shard child spans linked
//! (via `args.parent`) to their campaign job span.

use natoms::arch::Grid;
use natoms::benchmarks::Benchmark;
use natoms::compiler::{
    compile, initial_layout, placement_digest, schedule_digest, CompilerConfig,
};
use natoms::engine::{Engine, ExperimentSpec, LossSpec, Task};
use natoms::loss::{run_campaign, CampaignConfig, CampaignResult, LossModel, ShotTarget, Strategy};
use natoms::telemetry::trace;
use std::sync::Mutex;

/// Tracing state is process-global; the two tests in this binary must
/// not interleave their enable/reset windows.
static GUARD: Mutex<()> = Mutex::new(());

/// One single-job compile experiment through the engine, returning its
/// row — the job-span path through `run_job_isolated`.
fn engine_compile_row() -> natoms::engine::RunRecord {
    let mut spec = ExperimentSpec::new("guard", Grid::new(10, 10));
    spec.push(
        Benchmark::Bv,
        16,
        0,
        CompilerConfig::new(3.0),
        Task::Compile,
    );
    let mut rows = Engine::with_workers(1).run(&spec);
    assert_eq!(rows.len(), 1);
    rows.pop().expect("one row")
}

/// The workload both arms of the comparison run — the same pipeline the
/// telemetry guard pins, so the two observability layers are held to
/// the same standard.
fn pipeline_digests() -> (Vec<(u64, u64)>, CampaignResult, CampaignResult) {
    let grid = Grid::new(10, 10);
    let cfg = CompilerConfig::new(3.0);
    let mut compiles = Vec::new();
    for b in [Benchmark::Bv, Benchmark::Qaoa, Benchmark::Cuccaro] {
        let program = b.generate(20, 0);
        let compiled = compile(&program, &grid, &cfg).expect("compiles");
        let layout = initial_layout(&program, &grid, &cfg).expect("places");
        compiles.push((schedule_digest(&compiled), placement_digest(&layout)));
    }

    let program = Benchmark::Bv.generate(16, 0);
    let reroute_cfg = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
        .with_target(ShotTarget::Attempts(60))
        .with_seed(7);
    let reroute =
        run_campaign(&program, &grid, LossModel::new(3), &reroute_cfg).expect("campaign runs");

    let recompile_cfg = CampaignConfig::new(4.0, Strategy::FullRecompile)
        .with_target(ShotTarget::Attempts(30))
        .with_seed(7);
    let mut recompile = run_campaign(
        &program,
        &grid,
        LossModel::destructive_readout(3),
        &recompile_cfg,
    )
    .expect("campaign runs");
    // Measured wall clock — the one legitimately nondeterministic
    // field; zero it so the rest compares exactly.
    recompile.ledger.recompile_time = 0.0;

    (compiles, reroute, recompile)
}

#[test]
fn tracing_on_and_off_produce_bit_identical_results() {
    let _guard = GUARD.lock().unwrap();

    trace::set_enabled(false);
    trace::reset();
    let (compiles_off, reroute_off, recompile_off) = pipeline_digests();
    let row_off = engine_compile_row();

    trace::set_enabled(true);
    trace::reset();
    let (compiles_on, reroute_on, recompile_on) = pipeline_digests();
    let row_on = engine_compile_row();
    let events = trace::take_events();
    trace::set_enabled(false);
    trace::reset();

    assert_eq!(
        compiles_off, compiles_on,
        "schedule/placement digests changed under tracing"
    );
    assert_eq!(
        reroute_off, reroute_on,
        "reroute campaign result changed under tracing"
    );
    assert_eq!(
        recompile_off, recompile_on,
        "recompile campaign result changed under tracing"
    );
    assert_eq!(
        row_off.outcome, row_on.outcome,
        "engine row outcome changed under tracing"
    );

    // The enabled arm must actually have recorded spans — otherwise
    // this test passes vacuously with dead tracing.
    assert!(!events.is_empty(), "no trace events on the enabled arm");
    assert!(
        events
            .iter()
            .any(|e| e.cat == "pass" && e.phase == trace::Phase::Begin),
        "no compile-pass spans recorded"
    );
    assert!(
        events.iter().any(|e| e.name == "job"),
        "no engine job span recorded"
    );
}

#[test]
fn sharded_campaign_trace_is_perfetto_shaped() {
    let _guard = GUARD.lock().unwrap();

    trace::set_enabled(true);
    trace::reset();
    let mut spec = ExperimentSpec::new("trace-shape", Grid::new(10, 10));
    let config = CampaignConfig::new(4.0, Strategy::CompileSmallReroute)
        .with_target(ShotTarget::Attempts(40))
        .with_seed(7);
    spec.push(
        Benchmark::Bv,
        16,
        0,
        CompilerConfig::new(4.0),
        Task::ShardedCampaign {
            config,
            loss: LossSpec::new(3),
            shards: 2,
        },
    );
    let rows = Engine::with_workers(2).run(&spec);
    assert_eq!(rows.len(), 1);

    let mut buf = Vec::new();
    trace::write_chrome_trace(&mut buf).expect("export succeeds");
    trace::set_enabled(false);
    trace::reset();

    // Valid JSON array of event objects.
    let text = String::from_utf8(buf).expect("utf-8 export");
    let events: Vec<serde_json::Value> =
        serde_json::from_str(&text).expect("trace export parses as a JSON array");
    assert!(!events.is_empty(), "empty trace export");

    let str_of = |ev: &serde_json::Value, key: &str| {
        ev.get(key).and_then(|v| v.as_str()).map(str::to_string)
    };
    let u64_of = |ev: &serde_json::Value, key: &str| ev.get(key).and_then(|v| v.as_u64());
    let arg_u64 = |ev: &serde_json::Value, key: &str| {
        ev.get("args")
            .and_then(|args| args.get(key))
            .and_then(|v| v.as_u64())
    };

    // Matched begin/end pairs and monotone timestamps, per track.
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    for ev in &events {
        let tid = u64_of(ev, "tid").expect("every event carries a tid");
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .expect("every event carries a numeric ts");
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(
            ts >= *prev,
            "timestamps not monotone on tid {tid}: {ts} after {prev}"
        );
        *prev = ts;
        let name = str_of(ev, "name").expect("every event carries a name");
        match str_of(ev, "ph").as_deref() {
            Some("B") => stacks.entry(tid).or_default().push(name),
            Some("E") => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E {name:?} on tid {tid} with no open span"));
                assert_eq!(open, name, "mismatched begin/end nesting on tid {tid}");
            }
            Some("i") => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    // Span hierarchy: the campaign job span exists on its virtual job
    // track, and both shard spans (plus the merge span) point at it.
    let job_span = events
        .iter()
        .find(|ev| str_of(ev, "name").as_deref() == Some("campaign_job"))
        .expect("sharded campaign emits a campaign_job span");
    let job_id = arg_u64(job_span, "id").expect("campaign_job carries its span id");
    assert!(
        u64_of(job_span, "tid").expect("tid") >= trace::JOB_TRACK_BASE,
        "campaign job span must live on a virtual job track"
    );
    assert_eq!(arg_u64(job_span, "shards"), Some(2));
    let shard_begins: Vec<&serde_json::Value> = events
        .iter()
        .filter(|ev| {
            str_of(ev, "name").as_deref() == Some("shard")
                && str_of(ev, "ph").as_deref() == Some("B")
        })
        .collect();
    assert_eq!(shard_begins.len(), 2, "one span per shard");
    for shard in &shard_begins {
        assert_eq!(
            arg_u64(shard, "parent"),
            Some(job_id),
            "shard span not parented to the campaign job span"
        );
    }
    let merge = events
        .iter()
        .find(|ev| {
            str_of(ev, "name").as_deref() == Some("merge")
                && str_of(ev, "ph").as_deref() == Some("B")
        })
        .expect("last finisher records a merge span");
    assert_eq!(
        arg_u64(merge, "parent"),
        Some(job_id),
        "merge span not parented to the campaign job span"
    );
}
