//! Round-trip property tests for the OpenQASM frontend: `parse ∘
//! to_qasm` must preserve the structural circuit fingerprint for every
//! benchmark generator at every size — the contract that lets the
//! engine's fingerprint-keyed compile cache treat an exported-then-
//! reimported circuit as the same compilation point.

use natoms::benchmarks::Benchmark;
use natoms::circuit::qasm::{parse_qasm, to_qasm};
use natoms::circuit::sim::circuits_equivalent;
use natoms::circuit::{decompose_circuit, Circuit, DecomposeLevel, Qubit};

#[test]
fn all_five_generators_round_trip_fingerprints_across_sizes() {
    for b in Benchmark::ALL {
        for size in [4u32, 8, 16, 30, 50, 75] {
            let c = b.generate(size, 3);
            let text = to_qasm(&c).expect("generators emit exportable gates");
            let back = parse_qasm(&text)
                .unwrap_or_else(|e| panic!("{b} size {size}: reimport failed: {e}"));
            assert_eq!(
                back.fingerprint(),
                c.fingerprint(),
                "{b} size {size}: fingerprint changed across the round trip"
            );
            assert_eq!(back, c, "{b} size {size}: circuits differ");
        }
    }
}

#[test]
fn qaoa_round_trips_across_seeds() {
    // QAOA is the one generator with randomness (graph + angles); the
    // angle f64s must survive the text round trip bit for bit.
    for seed in 0..8u64 {
        let c = Benchmark::Qaoa.generate(16, seed);
        let back = parse_qasm(&to_qasm(&c).unwrap()).unwrap();
        assert_eq!(back.fingerprint(), c.fingerprint(), "seed {seed}");
    }
}

#[test]
fn small_generators_round_trip_the_unitary_too() {
    // Belt and braces below the fingerprint: at simulable sizes the
    // reimported circuit implements the same unitary.
    for b in Benchmark::ALL {
        let c = b.generate(6, 1);
        if c.num_qubits() > 8 {
            continue; // equivalence checks every basis column
        }
        let back = parse_qasm(&to_qasm(&c).unwrap()).unwrap();
        assert!(
            circuits_equivalent(&c, &back, 1e-9),
            "{b}: unitary changed across the round trip"
        );
    }
}

#[test]
fn lowered_cnx_survives_the_round_trip() {
    // A wide Cnx exports only after lowering through decompose.rs; the
    // lowered tree then round-trips exactly.
    let mut c = Circuit::new(8);
    c.cnx((0..6).map(Qubit).collect(), Qubit(6));
    assert!(to_qasm(&c).is_err(), "raw 6-control Cnx must not export");
    let lowered = decompose_circuit(&c, DecomposeLevel::ThreeQubit);
    let back = parse_qasm(&to_qasm(&lowered).unwrap()).unwrap();
    assert_eq!(back.fingerprint(), lowered.fingerprint());
}

#[test]
fn extreme_angles_survive_the_text_round_trip() {
    // f64 Display produces the shortest representation that reparses
    // to the identical bits; pin that for awkward values.
    let mut c = Circuit::new(1);
    for angle in [
        std::f64::consts::PI,
        -std::f64::consts::FRAC_PI_8,
        1e-300,
        -2.5e17,
        0.1 + 0.2,
        f64::MIN_POSITIVE,
    ] {
        c.rz(Qubit(0), angle);
    }
    let back = parse_qasm(&to_qasm(&c).unwrap()).unwrap();
    assert_eq!(back.fingerprint(), c.fingerprint());
}
