//! The chaos suite: deterministic fault injection through every
//! planted failpoint site, at several worker counts.
//!
//! The failure-domain contract under test:
//!
//! * the process survives every injected panic/error/delay — a fault
//!   in one job becomes that job's typed `Failed` row;
//! * failed rows are deterministic (same bytes at 1, 2, or 8 workers);
//! * every *other* row is bit-identical to a fault-free golden run;
//! * a panicking compile-cache claimant releases its claim — later
//!   requesters of the key make progress in bounded time instead of
//!   deadlocking on a poisoned entry;
//! * deadline extremes behave: a zero budget fails every job typed, a
//!   generous budget changes nothing.
//!
//! Fault plans are process-global, so every test here serializes
//! through [`faults::exclusive`] and disarms with [`faults::reset`].

use natoms::arch::Grid;
use natoms::benchmarks::Benchmark;
use natoms::compiler::CompilerConfig;
use natoms::engine::{
    Engine, ExperimentSpec, JsonlSink, LossSpec, MemorySink, Outcome, RunRecord, Task,
};
use natoms::faults;
use natoms::loss::{CampaignConfig, ShotTarget, Strategy};
use std::time::Duration;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A spec exercising every failpoint site: four compile jobs (ids
/// 0..=3, distinct keys) and two campaign replicas (ids 4 and 5, one
/// shared compile key) whose shot loops hit `loss.shot`.
fn mixed_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new("chaos", Grid::new(8, 8));
    for size in [8u32, 10, 12, 14] {
        spec.push(
            Benchmark::Bv,
            size,
            0,
            CompilerConfig::new(3.0),
            Task::Compile,
        );
    }
    for seed in [1u64, 2] {
        spec.push(
            Benchmark::Bv,
            10,
            0,
            CompilerConfig::new(4.0),
            Task::Campaign {
                config: CampaignConfig::new(4.0, Strategy::VirtualRemap)
                    .with_target(ShotTarget::Attempts(30))
                    .with_seed(seed),
                loss: LossSpec::new(seed),
            },
        );
    }
    spec
}

fn run_jsonl(spec: &ExperimentSpec, workers: usize) -> (Vec<RunRecord>, Vec<String>) {
    let mut sink = MemorySink::new();
    let records = Engine::with_workers(workers)
        .run_into(spec, &mut sink)
        .expect("memory sink never fails");
    (records, sink.lines)
}

#[test]
fn every_failpoint_site_is_survivable_and_deterministic() {
    let _serial = faults::exclusive();
    faults::reset();
    let spec = mixed_spec();

    // Fault-free golden: faults linked but disarmed, identical rows at
    // any worker count, nothing failed.
    let (golden_records, golden) = run_jsonl(&spec, 1);
    assert!(golden_records.iter().all(|r| !r.outcome.is_failed()));
    for workers in [2usize, 8] {
        assert_eq!(
            golden,
            run_jsonl(&spec, workers).1,
            "golden determinism at {workers} workers"
        );
    }

    // One plan per site/action pair; `target` is the only row allowed
    // to differ from golden.
    let cases = [
        ("engine.execute_job#job1=panic@1", 1usize),
        ("engine.compile#job3=error@1", 3),
        ("loss.shot#job5=error@3", 5),
        ("loss.shot#job4=panic@2", 4),
        ("engine.execute_job#job0=delay:20", usize::MAX), // delay: no row fails
    ];
    for (plan, target) in cases {
        let mut renders: Vec<Vec<String>> = Vec::new();
        for workers in WORKER_COUNTS {
            faults::reset();
            faults::arm_spec(plan).unwrap();
            let (records, lines) = run_jsonl(&spec, workers);
            faults::reset();
            for (i, (record, (line, gold))) in
                records.iter().zip(lines.iter().zip(&golden)).enumerate()
            {
                if i == target {
                    assert!(
                        record.outcome.is_failed(),
                        "{plan} at {workers} workers must fail row {target}"
                    );
                } else {
                    assert!(!record.outcome.is_failed());
                    assert_eq!(line, gold, "{plan} at {workers} workers perturbed row {i}");
                }
            }
            renders.push(lines);
        }
        assert_eq!(renders[0], renders[1], "{plan}: 1 vs 2 workers");
        assert_eq!(renders[1], renders[2], "{plan}: 2 vs 8 workers");
    }
}

/// Injected failures carry their type in the row, not just a message.
#[test]
fn injected_failures_are_typed_in_their_rows() {
    let _serial = faults::exclusive();
    faults::reset();
    let spec = mixed_spec();

    faults::arm_spec("engine.execute_job#job1=panic@1; loss.shot#job5=error@1").unwrap();
    let (records, _) = run_jsonl(&spec, 2);
    faults::reset();

    match &records[1].outcome {
        Outcome::Failed {
            panicked,
            deadline,
            error,
            ..
        } => {
            assert!(panicked);
            assert!(!deadline);
            assert_eq!(error, "injected panic at engine.execute_job (hit 1)");
        }
        other => panic!("expected a panic row, got {other:?}"),
    }
    match &records[5].outcome {
        Outcome::Failed {
            panicked, error, ..
        } => {
            assert!(!panicked);
            assert_eq!(error, "injected fault at loss.shot");
        }
        other => panic!("expected an injected-error row, got {other:?}"),
    }
}

/// The sink failpoint takes the same typed path a real I/O error
/// would: the write stops at the failing record, and the error is not
/// mistaken for a broken pipe.
#[test]
fn sink_write_failpoint_surfaces_as_typed_sink_error() {
    let _serial = faults::exclusive();
    faults::reset();
    let spec = mixed_spec();
    let records = Engine::with_workers(2).run(&spec);

    faults::arm_spec("engine.sink.write#emit=error@2").unwrap();
    let err = {
        let _scope = faults::scope("emit");
        let mut sink = JsonlSink::new(Vec::new());
        let err = natoms::engine::write_records(&records, &mut sink).unwrap_err();
        let written = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            written.lines().count(),
            1,
            "exactly the pre-fault record is on disk"
        );
        err
    };
    faults::reset();
    assert!(!err.is_broken_pipe());
    assert!(err
        .to_string()
        .contains("injected fault at engine.sink.write"));
}

/// The anti-deadlock watchdog: after a claimant panics mid-compile,
/// re-requesting the same key must complete in bounded time (the claim
/// was released to Vacant and the waiters were woken) — the scenario
/// that wedged a bare `OnceLock` design forever.
#[test]
fn panicked_claimant_does_not_deadlock_the_cache() {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _serial = faults::exclusive();
        faults::reset();
        faults::arm_spec("engine.compile#job0=panic@1").unwrap();
        // Two jobs sharing one compile key, run serially so job 0 is
        // deterministically the first (panicking) claimant.
        let mut spec = ExperimentSpec::new("watchdog", Grid::new(6, 6));
        for _ in 0..2 {
            spec.push(Benchmark::Bv, 8, 0, CompilerConfig::new(3.0), Task::Compile);
        }
        let records = Engine::with_workers(1).run(&spec);
        faults::reset();
        let ok = records[0].outcome.is_failed() && !records[1].outcome.is_failed();
        tx.send(ok).unwrap();
    });
    let ok = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("cache re-request deadlocked after a claimant panic");
    assert!(ok, "job 0 fails isolated, job 1 compiles the released key");
}

/// Deadline extremes: an already-expired budget fails every job with a
/// typed row at any worker count; a generous budget is bit-identical
/// to no budget at all.
#[test]
fn deadline_extremes_are_typed_and_nonperturbing() {
    let _serial = faults::exclusive();
    faults::reset();
    let spec = mixed_spec();

    let mut renders = Vec::new();
    for workers in WORKER_COUNTS {
        let mut sink = MemorySink::new();
        let records = Engine::with_workers(workers)
            .with_job_timeout(Duration::ZERO)
            .run_into(&spec, &mut sink)
            .unwrap();
        for record in &records {
            match &record.outcome {
                Outcome::Failed {
                    deadline,
                    panicked,
                    error,
                    ..
                } => {
                    assert!(*deadline && !panicked);
                    assert_eq!(error, "job deadline exceeded");
                }
                other => panic!("expected a deadline row, got {other:?}"),
            }
        }
        renders.push(sink.to_jsonl());
    }
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[1], renders[2]);

    let (_, golden) = run_jsonl(&spec, 2);
    let mut sink = MemorySink::new();
    Engine::with_workers(2)
        .with_job_timeout(Duration::from_secs(3600))
        .run_into(&spec, &mut sink)
        .unwrap();
    assert_eq!(
        sink.lines, golden,
        "a generous budget must not perturb a single byte"
    );
}
