//! The committed QASM corpus (`examples/qasm/`) exercised end to end:
//! every file must parse, round-trip through the exporter with its
//! fingerprint intact, prove state-vector equivalence against its
//! two-qubit lowering, and compile on the paper grid. CI runs this
//! suite as the corpus smoke step.

use natoms::arch::Grid;
use natoms::circuit::qasm::{parse_qasm, to_qasm};
use natoms::circuit::sim::{circuits_equivalent, StateVector, MAX_QUBITS};
use natoms::circuit::{decompose_circuit, Circuit, DecomposeLevel};
use natoms::compiler::{compile, verify, CompilerConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("qasm")
}

fn corpus() -> Vec<(String, Circuit)> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("examples/qasm exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "qasm"))
        .collect();
    files.sort();
    assert!(files.len() >= 5, "corpus unexpectedly small: {files:?}");
    files
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("readable corpus file");
            let circuit =
                parse_qasm(&src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            (name, circuit)
        })
        .collect()
}

#[test]
fn every_corpus_file_parses_nontrivially() {
    for (name, c) in corpus() {
        assert!(!c.is_empty(), "{name} parsed to an empty circuit");
        assert!(c.num_qubits() > 0, "{name} has no qubits");
        assert!(
            c.num_qubits() <= MAX_QUBITS,
            "{name} exceeds the simulable width the corpus promises"
        );
    }
}

#[test]
fn every_corpus_file_round_trips_through_the_exporter() {
    // Imported circuits contain only round-trippable gate variants, so
    // the fingerprint (not just the unitary) must survive.
    for (name, c) in corpus() {
        let text = to_qasm(&c).unwrap_or_else(|e| panic!("{name} failed to export: {e}"));
        let back = parse_qasm(&text).unwrap_or_else(|e| panic!("{name} failed to reimport: {e}"));
        assert_eq!(
            back.fingerprint(),
            c.fingerprint(),
            "{name}: fingerprint changed across the round trip"
        );
    }
}

#[test]
fn every_corpus_file_is_sim_equivalent_to_its_lowering() {
    // State-vector equivalence (every basis column, global phase
    // forgiven) between each imported circuit and its full two-qubit
    // lowering through decompose.rs — the check is exponential in
    // width, so restrict it to the small files.
    for (name, c) in corpus() {
        if c.num_qubits() > 8 {
            continue;
        }
        let lowered = decompose_circuit(&c, DecomposeLevel::TwoQubit);
        assert!(
            circuits_equivalent(&c, &lowered, 1e-9),
            "{name}: lowering changed the unitary"
        );
    }
}

#[test]
fn every_corpus_file_compiles_on_the_paper_grid() {
    let grid = Grid::new(10, 10);
    for (name, c) in corpus() {
        for cfg in [
            CompilerConfig::new(3.0),
            CompilerConfig::new(2.0).with_native_multiqubit(false),
        ] {
            let compiled = compile(&c, &grid, &cfg)
                .unwrap_or_else(|e| panic!("{name} failed to compile at MID {}: {e}", cfg.mid));
            verify(&compiled, &grid)
                .unwrap_or_else(|e| panic!("{name} produced an invalid schedule: {e}"));
            assert!(compiled.num_timesteps() > 0, "{name}: empty schedule");
        }
    }
}

#[test]
fn adder_corpus_file_computes_one_plus_fifteen() {
    // adder4.qasm prepares a = 1, b = 15; the sum overflows: b -> 0,
    // cout -> 1, a restored. Register layout: cin = q0, a = q1..q4,
    // b = q5..q8, cout = q9, so the final basis state sets exactly
    // q1 (a = 1) and q9 (cout).
    let src = std::fs::read_to_string(corpus_dir().join("adder4.qasm")).unwrap();
    let c = parse_qasm(&src).unwrap();
    assert_eq!(c.num_qubits(), 10);
    let state = StateVector::run(&c);
    let expected = (1u64 << 1) | (1u64 << 9);
    assert!(
        (state.probability(expected) - 1.0).abs() < 1e-9,
        "adder output state wrong"
    );
}

#[test]
fn ghz_corpus_file_prepares_a_ghz_state() {
    let src = std::fs::read_to_string(corpus_dir().join("ghz8.qasm")).unwrap();
    let c = parse_qasm(&src).unwrap();
    let state = StateVector::run(&c);
    assert!((state.probability(0) - 0.5).abs() < 1e-9);
    assert!((state.probability(0xFF) - 0.5).abs() < 1e-9);
}

#[test]
fn toffoli_corpus_file_ands_its_controls() {
    let src = std::fs::read_to_string(corpus_dir().join("toffoli5.qasm")).unwrap();
    let c = parse_qasm(&src).unwrap();
    let state = StateVector::run(&c);
    // q0..q2 set by the X prep, ancilla q3 uncomputed, q4 = AND = 1.
    let expected = 0b10111u64;
    assert!((state.probability(expected) - 1.0).abs() < 1e-9);
}

#[test]
fn corpus_circuits_run_a_loss_campaign_end_to_end() {
    // The acceptance criterion's `natoms campaign --qasm …` path,
    // driven through the library: an imported circuit must survive a
    // full multi-shot campaign under atom loss.
    use natoms::loss::{run_campaign, CampaignConfig, LossModel, ShotTarget, Strategy};
    let src = std::fs::read_to_string(corpus_dir().join("ghz8.qasm")).unwrap();
    let c = parse_qasm(&src).unwrap();
    let cfg = CampaignConfig::new(3.0, Strategy::CompileSmallReroute)
        .with_target(ShotTarget::Attempts(40))
        .with_seed(7);
    let result = run_campaign(&c, &Grid::new(10, 10), LossModel::new(7), &cfg).unwrap();
    assert_eq!(result.shots_attempted, 40);
    assert!(result.shots_successful > 0, "GHZ campaign never succeeded");
}
