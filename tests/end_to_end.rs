//! End-to-end integration tests: benchmark generation → compilation →
//! verification → success estimation, across the paper's parameter
//! space.

use natoms::arch::{Grid, RestrictionPolicy, Site};
use natoms::benchmarks::Benchmark;
use natoms::compiler::{compile, verify, CompilerConfig};
use natoms::noise::{success_probability, NoiseParams};

#[test]
fn every_benchmark_compiles_and_verifies_across_mids() {
    let grid = Grid::new(10, 10);
    for b in Benchmark::ALL {
        for mid in [2.0, 3.0, 5.0, 13.0] {
            let program = b.generate(30, 1);
            let compiled = compile(&program, &grid, &CompilerConfig::new(mid))
                .unwrap_or_else(|e| panic!("{b} at MID {mid}: {e}"));
            verify(&compiled, &grid).unwrap_or_else(|e| panic!("{b} at MID {mid}: {e}"));
        }
    }
}

#[test]
fn mid_one_two_qubit_gate_set_compiles_everything() {
    let grid = Grid::new(10, 10);
    for b in Benchmark::ALL {
        let program = b.generate(24, 1);
        let cfg = CompilerConfig::new(1.0)
            .with_native_multiqubit(false)
            .with_restriction(RestrictionPolicy::None);
        let compiled = compile(&program, &grid, &cfg).unwrap_or_else(|e| panic!("{b}: {e}"));
        verify(&compiled, &grid).unwrap_or_else(|e| panic!("{b}: {e}"));
        assert_eq!(compiled.metrics().three_qubit, 0, "{b}");
    }
}

#[test]
fn gate_count_is_monotone_nonincreasing_in_mid_on_average() {
    // The paper's central connectivity claim (Fig. 3): more interaction
    // distance, fewer SWAPs. Checked per benchmark at size 40.
    let grid = Grid::new(10, 10);
    for b in Benchmark::ALL {
        let program = b.generate(40, 2);
        let counts: Vec<usize> = [1.0, 3.0, 13.0]
            .iter()
            .map(|&mid| {
                compile(
                    &program,
                    &grid,
                    &CompilerConfig::new(mid).with_native_multiqubit(false),
                )
                .unwrap()
                .metrics()
                .total_gates()
            })
            .collect();
        assert!(
            counts[0] >= counts[1] && counts[1] >= counts[2],
            "{b}: {counts:?} not monotone"
        );
    }
}

#[test]
fn full_connectivity_needs_zero_swaps() {
    let grid = Grid::new(10, 10);
    let mid = grid.max_distance();
    for b in Benchmark::ALL {
        let program = b.generate(30, 3);
        let compiled = compile(
            &program,
            &grid,
            &CompilerConfig::new(mid).with_native_multiqubit(false),
        )
        .unwrap();
        assert_eq!(compiled.metrics().swaps, 0, "{b}");
    }
}

#[test]
fn native_multiqubit_always_wins_on_gate_count_for_toffoli_benchmarks() {
    let grid = Grid::new(10, 10);
    for b in [Benchmark::Cnu, Benchmark::Cuccaro] {
        for mid in [2.0, 3.0, 5.0] {
            let program = b.generate(30, 0);
            let native = compile(&program, &grid, &CompilerConfig::new(mid)).unwrap();
            let lowered = compile(
                &program,
                &grid,
                &CompilerConfig::new(mid).with_native_multiqubit(false),
            )
            .unwrap();
            assert!(
                native.metrics().total_gates() < lowered.metrics().total_gates() / 2,
                "{b} MID {mid}: native {} vs lowered {}",
                native.metrics().total_gates(),
                lowered.metrics().total_gates()
            );
        }
    }
}

#[test]
fn restriction_zones_never_change_gate_count_much() {
    // Zones serialize; they do not route. Gate counts with and without
    // zones stay close (routing decisions may differ slightly).
    let grid = Grid::new(10, 10);
    let program = Benchmark::Qaoa.generate(30, 4);
    let cfg = CompilerConfig::new(4.0).with_native_multiqubit(false);
    let with = compile(&program, &grid, &cfg).unwrap();
    let without = compile(
        &program,
        &grid,
        &cfg.with_restriction(RestrictionPolicy::None),
    )
    .unwrap();
    let a = with.metrics().total_gates() as f64;
    let b = without.metrics().total_gates() as f64;
    assert!((a - b).abs() / b < 0.15, "gate counts diverged: {a} vs {b}");
    assert!(with.metrics().depth >= without.metrics().depth);
}

#[test]
fn success_model_is_architecture_sensitive() {
    // At equal two-qubit error the NA compilation must beat the
    // SC-style compilation for a Toffoli-heavy program (Fig. 7's
    // architectural claim).
    let grid = Grid::new(10, 10);
    let program = Benchmark::Cuccaro.generate(30, 0);
    let na = compile(&program, &grid, &CompilerConfig::new(3.0)).unwrap();
    let sc = compile(
        &program,
        &grid,
        &CompilerConfig::new(1.0)
            .with_native_multiqubit(false)
            .with_restriction(RestrictionPolicy::None),
    )
    .unwrap();
    for e in [1e-4, 1e-3, 1e-2] {
        let p_na = success_probability(&na, &NoiseParams::neutral_atom(e)).probability();
        let p_sc = success_probability(&sc, &NoiseParams::superconducting(e)).probability();
        assert!(p_na > p_sc, "error {e}: NA {p_na} vs SC {p_sc}");
    }
}

#[test]
fn compilation_survives_damaged_grids() {
    // Compile onto grids with increasing numbers of holes; schedules
    // must stay valid and avoid every hole.
    let program = Benchmark::Bv.generate(20, 0);
    let mut grid = Grid::new(8, 8);
    let holes = [
        Site::new(3, 3),
        Site::new(4, 4),
        Site::new(0, 0),
        Site::new(7, 2),
        Site::new(2, 6),
        Site::new(5, 1),
    ];
    for (i, &h) in holes.iter().enumerate() {
        grid.remove_atom(h);
        let compiled = compile(&program, &grid, &CompilerConfig::new(2.0))
            .unwrap_or_else(|e| panic!("{} holes: {e}", i + 1));
        verify(&compiled, &grid).unwrap_or_else(|e| panic!("{} holes: {e}", i + 1));
        for op in compiled.ops() {
            for s in &op.sites {
                assert!(grid.is_usable(*s));
            }
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let grid = Grid::new(10, 10);
    let program = Benchmark::Qaoa.generate(50, 9);
    let cfg = CompilerConfig::new(3.0);
    let a = compile(&program, &grid, &cfg).unwrap();
    let b = compile(&program, &grid, &cfg).unwrap();
    assert_eq!(a, b);
}
