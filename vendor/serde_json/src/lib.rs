//! Offline vendored subset of `serde_json`: compact JSON rendering and
//! parsing over the vendored `serde` [`Value`] data model.
//!
//! Supports the slice of the real API this workspace uses:
//! [`to_string`], [`to_value`], [`from_str`], [`from_value`], and the
//! [`Value`]/[`Number`] re-exports. Output is compact (no whitespace)
//! and deterministic: struct fields serialize in declaration order and
//! `HashMap` entries are sorted by key.

pub use serde::{DeError, Number, Value};

use std::fmt;

/// Error type covering both syntax and shape errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
///
/// Infallible for the vendored data model (non-finite floats render as
/// `null`); the `Result` mirrors the real API.
///
/// # Errors
///
/// Never fails; the signature matches `serde_json::to_string`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::ser::to_json_string(&value.to_value()))
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails; the signature matches `serde_json::to_value`.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on invalid JSON or on shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::de::parse(text).map_err(Error)?;
    T::from_value(&value).map_err(Error::from)
}

/// Rebuilds a deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_is_compact() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn from_str_round_trips() {
        let v: Vec<f64> = from_str("[1.0,2.5]").unwrap();
        assert_eq!(v, vec![1.0, 2.5]);
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
    }

    #[test]
    fn value_round_trips() {
        let text = r#"{"rows":[{"mid":3.0,"gates":120}],"name":"fig03"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }
}
