//! Offline vendored subset of `serde`.
//!
//! The container image has no network access to crates.io, so this
//! workspace ships a self-contained replacement for the slice of serde
//! it actually uses: the [`Serialize`] / [`Deserialize`] traits, their
//! derive macros (re-exported from the companion `serde_derive`
//! proc-macro crate), and a JSON-shaped [`Value`] data model that
//! `serde_json` renders and parses.
//!
//! Design differences from real serde, chosen for smallness:
//!
//! * serialization goes through a concrete [`Value`] tree instead of a
//!   generic `Serializer` visitor — every type this workspace derives
//!   is finite and owned, so the intermediate tree costs little;
//! * map keys are rendered to strings (non-string keys use their
//!   compact JSON encoding as the key), matching what `serde_json`
//!   would reject and this repo never round-trips;
//! * `HashMap` entries are sorted by key at serialization time so
//!   output is deterministic — a property the experiment engine's
//!   byte-identical-rows guarantee relies on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON value: the concrete data model serialization flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion-ordered so derived structs serialize
    /// their fields in declaration order.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer-ness like `serde_json::Number`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float (non-finite floats serialize as `null`).
    Float(f64),
}

impl Value {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds a "expected X" error for `value`.
    pub fn expected(what: &str, value: &Value) -> Self {
        DeError(format!("expected {what}, found {value:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), value))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), value))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}
impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| DeError::expected("usize", value))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_i64()
            .and_then(|n| isize::try_from(n).ok())
            .ok_or_else(|| DeError::expected("isize", value))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("f32", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-character string", value)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError(format!("array length mismatch for [T; {N}]")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", value)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", value)),
        }
    }
}

/// Renders a map key: string values pass through, everything else uses
/// its compact JSON encoding (real serde_json rejects non-string keys;
/// this repo only round-trips them through these vendored crates).
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => crate::ser::to_json_string(&other),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    let as_string = Value::String(key.to_string());
    if let Ok(k) = K::from_value(&as_string) {
        return Ok(k);
    }
    let parsed = crate::de::parse(key).map_err(|e| DeError(format!("bad map key {key:?}: {e}")))?;
    K::from_value(&parsed)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", value)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", value)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// JSON rendering of the [`Value`] tree (used by `serde_json`; lives
/// here so [`Serialize`] map keys can reuse it).
pub mod ser {
    use super::{Number, Value};
    use std::fmt::Write;

    /// Compact JSON text for a value tree.
    pub fn to_json_string(value: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, value);
        out
    }

    fn write_value(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    write_value(out, v);
                }
                out.push('}');
            }
        }
    }

    fn write_number(out: &mut String, n: Number) {
        match n {
            Number::PosInt(v) => {
                let _ = write!(out, "{v}");
            }
            Number::NegInt(v) => {
                let _ = write!(out, "{v}");
            }
            Number::Float(x) => {
                if x.is_finite() {
                    // Shortest round-trippable form, with a trailing
                    // ".0" for integral floats like serde_json.
                    if x == x.trunc() && x.abs() < 1e16 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// JSON parsing into the [`Value`] tree.
pub mod de {
    use super::{Number, Value};

    /// Parses JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => expect_lit(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect_lit(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect_lit(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at byte {pos}"));
                    }
                    *pos += 1;
                    let value = parse_value(bytes, pos)?;
                    entries.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = *pos;
                    let len = if b < 0x80 {
                        1
                    } else if b >> 5 == 0b110 {
                        2
                    } else if b >> 4 == 0b1110 {
                        3
                    } else {
                        4
                    };
                    let chunk = bytes.get(start..start + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    *pos += len;
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
        if text.is_empty() {
            return Err(format!("expected value at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| format!("invalid number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let arr = [1u32, 2];
        assert_eq!(<[u32; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        assert_eq!(ser::to_json_string(&v), "{\"a\":1,\"b\":2}");
        assert_eq!(HashMap::<String, u32>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn json_text_round_trips() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\"y","c":null,"d":true}"#;
        let v = de::parse(text).unwrap();
        assert_eq!(ser::to_json_string(&v), text);
    }
}
