//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this crate parses the item declaration
//! directly from the raw [`proc_macro::TokenStream`]. It supports
//! exactly the shapes this workspace derives:
//!
//! * structs with named fields, tuple structs (including newtypes),
//!   and unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default representation);
//! * `#[serde(default)]` on named struct fields — a missing (or
//!   `null`) key deserializes to `Default::default()`, which is how
//!   rows written before a field existed keep round-tripping;
//! * no generic parameters and no other `#[serde(...)]` attributes —
//!   the macro rejects generics with a compile error rather than
//!   mis-expanding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let f = &f.name;
                pushes.push_str(&format!(
                    "entries.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut entries: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(entries)"
            )
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((\"{f}\".to_string(), serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\nlet mut inner: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(vec![(\"{vname}\".to_string(), serde::Value::Object(inner))])\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl serde::Serialize for {} {{\nfn to_value(&self) -> serde::Value {{\n{}\n}}\n}}\n",
        item.name, body
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let (f, default) = (&f.name, f.default);
                if default {
                    // `#[serde(default)]`: absent or null keys take the
                    // field type's `Default` instead of erroring.
                    inits.push_str(&format!(
                        "{f}: match value.get(\"{f}\") {{\nNone | Some(serde::Value::Null) => Default::default(),\nSome(v) => serde::Deserialize::from_value(v).map_err(|e| serde::DeError(format!(\"{name}.{f}: {{e}}\")))?,\n}},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: serde::Deserialize::from_value(value.get(\"{f}\").unwrap_or(&serde::Value::Null)).map_err(|e| serde::DeError(format!(\"{name}.{f}: {{e}}\")))?,\n"
                    ));
                }
            }
            format!(
                "match value {{\nserde::Value::Object(_) => Ok({name} {{\n{inits}}}),\n_ => Err(serde::DeError::expected(\"struct {name}\", value)),\n}}"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
            let fields: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(v{i})?"))
                .collect();
            format!(
                "match value.as_array() {{\nSome([{}]) => Ok({name}({})),\n_ => Err(serde::DeError::expected(\"{n}-element array for {name}\", value)),\n}}",
                binds.join(", "),
                fields.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => return Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => return Ok({name}::{vname}(serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                        let fields: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(v{i})?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match inner.as_array() {{\nSome([{}]) => return Ok({name}::{vname}({})),\n_ => return Err(serde::DeError::expected(\"{n}-element array for {name}::{vname}\", inner)),\n}},\n",
                            binds.join(", "),
                            fields.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&serde::Value::Null))?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => return Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let Some(tag) = value.as_str() {{\nmatch tag {{\n{unit_arms}_ => {{}}\n}}\n}}\nif let serde::Value::Object(entries) = value {{\nif entries.len() == 1 {{\nlet (tag, inner) = &entries[0];\nlet _ = inner;\nmatch tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n}}\n}}\nErr(serde::DeError::expected(\"enum {name}\", value))"
            )
        }
    };
    let out = format!(
        "impl serde::Deserialize for {name} {{\nfn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A minimal item parser over the raw token stream
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]` was present on the field.
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    };
    Item { name, shape }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips leading attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`), reporting whether any attribute was
/// `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &mut Tokens) -> bool {
    let mut default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        default |= is_serde_default(g.stream());
                    }
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return default,
        }
    }
}

/// Whether an attribute body (the tokens inside `#[...]`) reads
/// `serde(default)`.
fn is_serde_default(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(g)))
            if i.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let mut inner = g.stream().into_iter();
            match (inner.next(), inner.next()) {
                (Some(TokenTree::Ident(arg)), None) if arg.to_string() == "default" => true,
                other => panic!("vendored serde_derive supports only #[serde(default)]: {other:?}"),
            }
        }
        _ => false,
    }
}

/// Fields of a named-field body (`a: T, #[serde(default)] b: U, ...`).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {name}, found {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field { name, default });
    }
    fields
}

/// Consumes a type up to a top-level comma (commas inside `<...>` are
/// part of the type; bracketed/parenthesized tokens arrive as groups
/// and need no tracking).
fn skip_type(tokens: &mut Tokens) {
    let mut angle_depth = 0i32;
    while let Some(tree) = tokens.peek() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Number of fields in a tuple body (`pub u32, f64, ...`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                // Variant fields keep the plain name list; the
                // `default` flag is a named-struct feature.
                let fields = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|f| f.name)
                    .collect();
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while let Some(tree) = tokens.peek() {
            if matches!(tree, TokenTree::Punct(p) if p.as_char() == ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}
