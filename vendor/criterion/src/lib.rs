//! Offline vendored micro-benchmark harness exposing the slice of the
//! `criterion` API this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is intentionally simple (no statistics engine): each
//! benchmark runs a warm-up pass, then `sample_size` timed samples of
//! an adaptively chosen iteration count, and reports the median
//! per-iteration time. Honest for the coarse regression-spotting these
//! benches exist for; not a replacement for real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: aim for ~10ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.median_ns = times[times.len() / 2];
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            times.push(t.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        self.median_ns = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(20),
            median_ns: 0.0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), bencher.median_ns);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size.min(20),
            median_ns: 0.0,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), bencher.median_ns);
        self
    }

    /// Ends the group (prints nothing; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            median_ns: 0.0,
        };
        f(&mut bencher);
        report(id, bencher.median_ns);
        self
    }
}

fn report(id: &str, median_ns: f64) {
    let (value, unit) = if median_ns >= 1e9 {
        (median_ns / 1e9, "s")
    } else if median_ns >= 1e6 {
        (median_ns / 1e6, "ms")
    } else if median_ns >= 1e3 {
        (median_ns / 1e3, "us")
    } else {
        (median_ns, "ns")
    };
    println!("{id:<60} time: {value:10.3} {unit} (median)");
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
