//! Offline vendored subset of `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool`, and `gen_range` — over a xoshiro256++
//! generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s StdRng (ChaCha12); the
//! workspace never asserts on specific draws, only on statistics and
//! on determinism, both of which hold: the same seed always yields the
//! same stream, on every platform.

pub mod rngs {
    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64
    /// so similar seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core generation plus the convenience samplers the workspace uses.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// One uniform draw from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniformly sampleable types for [`Rng::gen`] (subset: `f64`, `bool`,
/// `u64`, `u32`).
pub trait Standard: Sized {
    /// One uniform draw.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A uniform draw of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::draw(self) < p
    }

    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }
}
